package replace

import (
	"math"
	"testing"
	"testing/quick"

	"fpmix/internal/config"
	"fpmix/internal/hl"
	"fpmix/internal/isa"
	"fpmix/internal/prog"
	"fpmix/internal/vm"
)

func TestEncodingHelpers(t *testing.T) {
	v := Encode(1.5)
	if !IsReplaced(v) {
		t.Fatal("Encode did not set flag")
	}
	if Payload(v) != 1.5 {
		t.Errorf("payload = %v", Payload(v))
	}
	if uint32(v>>32) != 0x7FF4DEAD {
		t.Errorf("high word = %#x", uint32(v>>32))
	}
	// A replaced value reads as a NaN when interpreted as a double.
	if !math.IsNaN(math.Float64frombits(v)) {
		t.Error("replaced value is not a NaN pattern")
	}
	d := math.Float64bits(2.75)
	if IsReplaced(d) {
		t.Error("plain double flagged")
	}
	if got := Downcast(d); Payload(got) != 2.75 || !IsReplaced(got) {
		t.Errorf("Downcast = %#x", got)
	}
	if got := Upcast(Encode(2.75)); math.Float64frombits(got) != 2.75 {
		t.Errorf("Upcast = %v", math.Float64frombits(got))
	}
	if got := Upcast(d); got != d {
		t.Error("Upcast modified a plain double")
	}
	if Value(Encode(0.5)) != 0.5 || Value(d) != 2.75 {
		t.Error("Value mis-decodes")
	}
}

func TestDowncastUpcastQuick(t *testing.T) {
	f := func(x float64) bool {
		r := Downcast(math.Float64bits(x))
		if !IsReplaced(r) {
			return false
		}
		up := math.Float64frombits(Upcast(r))
		want := float64(float32(x))
		if math.IsNaN(want) {
			return math.IsNaN(up)
		}
		return up == want
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// buildKernel compiles a small program that exercises add/mul/div/sqrt,
// comparisons, array traffic and a function call.
func buildKernel(mode hl.Mode) (*prog.Module, error) {
	p := hl.New("kern", mode)
	a := p.ArrayInit("a", []float64{1.25, 2.5, 3.75, 5.0})
	sum := p.Scalar("sum")
	nrm := p.Scalar("nrm")
	i := p.Int("i")
	main := p.Func("main")
	main.For(i, hl.IConst(0), hl.IConst(4), func() {
		main.Set(sum, hl.Add(hl.Load(sum), hl.At(a, hl.ILoad(i))))
		main.Set(nrm, hl.Add(hl.Load(nrm),
			hl.Mul(hl.At(a, hl.ILoad(i)), hl.At(a, hl.ILoad(i)))))
	})
	main.Call("norm")
	main.Out(hl.Load(sum))
	main.Out(hl.Load(nrm))
	main.Halt()
	nf := p.Func("norm")
	nf.Set(nrm, hl.Sqrt(hl.Load(nrm)))
	nf.If(hl.Gt(hl.Load(nrm), hl.Const(1)), func() {
		nf.Set(nrm, hl.Div(hl.Load(nrm), hl.Const(2)))
	}, nil)
	nf.Ret()
	return p.Build("main")
}

func runModule(t *testing.T, m *prog.Module) *vm.Machine {
	t.Helper()
	mach, err := vm.New(m)
	if err != nil {
		t.Fatal(err)
	}
	mach.TrapUnreplaced = true
	if err := mach.Run(); err != nil {
		t.Fatal(err)
	}
	return mach
}

// TestAllDoubleInstrumentationIsTransparent checks the Figure 8/9 "base
// case": wrapping every instruction in double-precision snippets must not
// change results at all, only cost cycles.
func TestAllDoubleInstrumentationIsTransparent(t *testing.T) {
	m, err := buildKernel(hl.ModeF64)
	if err != nil {
		t.Fatal(err)
	}
	c, err := config.FromModule(m)
	if err != nil {
		t.Fatal(err)
	}
	c.SetAll(config.Double)
	inst, err := Instrument(m, c, InstrumentOptions{})
	if err != nil {
		t.Fatal(err)
	}
	orig := runModule(t, m)
	wrapped := runModule(t, inst)
	for i := range orig.Out {
		if orig.Out[i].Bits != wrapped.Out[i].Bits {
			t.Errorf("output %d differs: %v vs %v", i, orig.Out[i].F64(), wrapped.Out[i].F64())
		}
	}
	if wrapped.Cycles <= orig.Cycles {
		t.Error("instrumentation should cost cycles")
	}
}

// TestAllSingleMatchesManualConversion is the paper's §3.1 verification:
// the instrumented all-single binary must produce bit-for-bit the same
// values as the manually converted (ModeF32-compiled) program.
func TestAllSingleMatchesManualConversion(t *testing.T) {
	m, err := buildKernel(hl.ModeF64)
	if err != nil {
		t.Fatal(err)
	}
	c, err := config.FromModule(m)
	if err != nil {
		t.Fatal(err)
	}
	c.SetAll(config.Single)
	inst, err := Instrument(m, c, InstrumentOptions{})
	if err != nil {
		t.Fatal(err)
	}
	got := runModule(t, inst)

	manual, err := buildKernel(hl.ModeF32)
	if err != nil {
		t.Fatal(err)
	}
	want := runModule(t, manual)

	if len(got.Out) != len(want.Out) {
		t.Fatalf("output counts differ: %d vs %d", len(got.Out), len(want.Out))
	}
	for i := range got.Out {
		g := got.Out[i].Bits
		if !IsReplaced(g) {
			t.Errorf("output %d not replaced: %#x", i, g)
			continue
		}
		if uint32(g) != uint32(want.Out[i].Bits) {
			t.Errorf("output %d: instrumented %v != manual %v",
				i, Payload(g), math.Float32frombits(uint32(want.Out[i].Bits)))
		}
	}
}

// TestMixedConfiguration replaces only the norm function and checks that
// double parts still see correct (upcast) values.
func TestMixedConfiguration(t *testing.T) {
	m, err := buildKernel(hl.ModeF64)
	if err != nil {
		t.Fatal(err)
	}
	c, err := config.FromModule(m)
	if err != nil {
		t.Fatal(err)
	}
	var normFn *config.Node
	for _, fn := range c.Root.Children {
		if fn.Name == "norm" {
			normFn = fn
		}
	}
	if normFn == nil {
		t.Fatal("norm not in config tree")
	}
	normFn.Flag = config.Single
	inst, err := Instrument(m, c, InstrumentOptions{})
	if err != nil {
		t.Fatal(err)
	}
	got := runModule(t, inst)
	ref := runModule(t, mustBuild(t))

	// sum is computed entirely in double and must match exactly.
	if got.Out[0].Bits != ref.Out[0].Bits {
		t.Errorf("double part diverged: %v vs %v", Value(got.Out[0].Bits), ref.Out[0].F64())
	}
	// nrm passed through single-precision sqrt/div: close but not equal.
	gn := Value(got.Out[1].Bits)
	rn := ref.Out[1].F64()
	if math.Abs(gn-rn) > 1e-5*math.Abs(rn) {
		t.Errorf("single part too far off: %v vs %v", gn, rn)
	}
	if gn == rn {
		t.Error("single part suspiciously exact (replacement not applied?)")
	}
}

func mustBuild(t *testing.T) *prog.Module {
	t.Helper()
	m, err := buildKernel(hl.ModeF64)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// TestIgnoreLeavesInstructionAlone checks that ignored instructions are
// not wrapped — and that feeding them replaced values produces NaN (the
// paper's crash-don't-corrupt property), caught by trap mode.
func TestIgnoreConfiguration(t *testing.T) {
	m, err := buildKernel(hl.ModeF64)
	if err != nil {
		t.Fatal(err)
	}
	c, err := config.FromModule(m)
	if err != nil {
		t.Fatal(err)
	}
	c.SetAll(config.Ignore)
	inst, err := Instrument(m, c, InstrumentOptions{})
	if err != nil {
		t.Fatal(err)
	}
	// All-ignore instrumentation is the identity (modulo relocation).
	orig := runModule(t, m)
	got := runModule(t, inst)
	for i := range orig.Out {
		if orig.Out[i].Bits != got.Out[i].Bits {
			t.Error("ignore configuration changed results")
		}
	}
}

func TestComputeStats(t *testing.T) {
	m, err := buildKernel(hl.ModeF64)
	if err != nil {
		t.Fatal(err)
	}
	c, _ := config.FromModule(m)
	mach := runModule(t, m)
	prof := mach.Profile()

	// All double: zero replacement.
	st := ComputeStats(m, c.Effective(), prof)
	if st.StaticSingle != 0 || st.DynamicSingle != 0 {
		t.Error("empty config has replacements")
	}
	if st.Candidates != len(m.Candidates()) {
		t.Errorf("candidates = %d", st.Candidates)
	}

	// All single: 100%.
	c.SetAll(config.Single)
	st = ComputeStats(m, c.Effective(), prof)
	if st.StaticPct != 100 || st.DynamicPct != 100 {
		t.Errorf("all-single stats: %.1f%% / %.1f%%", st.StaticPct, st.DynamicPct)
	}
	if st.DynamicTotal == 0 {
		t.Error("no dynamic executions recorded")
	}
}

// TestSnippetPreservesOtherState: registers and memory not involved in the
// replaced instruction must be untouched by the snippet.
func TestSnippetPreservesScratchState(t *testing.T) {
	m, err := buildKernel(hl.ModeF64)
	if err != nil {
		t.Fatal(err)
	}
	c, _ := config.FromModule(m)
	c.SetAll(config.Single)
	inst, err := Instrument(m, c, InstrumentOptions{})
	if err != nil {
		t.Fatal(err)
	}
	mach := runModule(t, inst)
	// The stack pointer must be fully restored after every snippet.
	if mach.GPR[4] != inst.MemSize&^15 { // RSP
		t.Errorf("stack pointer leaked: %#x != %#x", mach.GPR[4], inst.MemSize&^15)
	}
}

func TestUncheckedDowncastAblation(t *testing.T) {
	m, err := buildKernel(hl.ModeF64)
	if err != nil {
		t.Fatal(err)
	}
	c, _ := config.FromModule(m)
	c.SetAll(config.Single)
	fast, err := Instrument(m, c, InstrumentOptions{})
	if err != nil {
		t.Fatal(err)
	}
	slow, err := Instrument(m, c, InstrumentOptions{Snippet: Options{UncheckedDowncast: true}})
	if err != nil {
		t.Fatal(err)
	}
	mf := runModule(t, fast)
	ms := runModule(t, slow)
	// Same results...
	for i := range mf.Out {
		if mf.Out[i].Bits != ms.Out[i].Bits {
			t.Errorf("ablation changed output %d", i)
		}
	}
	// ...but the checked fast path must be cheaper.
	if mf.Cycles >= ms.Cycles {
		t.Errorf("flag-check fast path not faster: %d vs %d cycles", mf.Cycles, ms.Cycles)
	}
}

func TestSnippetErrors(t *testing.T) {
	mov := isa.I(isa.MOVSD, isa.Xmm(0), isa.Xmm(1))
	if _, err := SingleSnippet(mov, Options{}); err == nil {
		t.Error("non-candidate accepted by SingleSnippet")
	}
	if _, err := DoubleSnippet(mov, Options{}); err == nil {
		t.Error("non-candidate accepted by DoubleSnippet")
	}
	// RSP-relative FP memory operands cannot be promoted safely.
	rspOp := isa.I(isa.ADDSD, isa.Xmm(0), isa.Mem(isa.RSP, 8))
	if _, err := SingleSnippet(rspOp, Options{}); err == nil {
		t.Error("RSP-relative operand accepted")
	}
	if _, err := DoubleSnippet(rspOp, Options{}); err == nil {
		t.Error("RSP-relative operand accepted by double snippet")
	}
	// Memory promotion disabled.
	memOp := isa.I(isa.ADDSD, isa.Xmm(0), isa.Mem(isa.RBX, 8))
	if _, err := SingleSnippet(memOp, Options{NoMemPromotion: true}); err == nil {
		t.Error("memory operand accepted with promotion disabled")
	}
	// Producers need no double snippet.
	prod := isa.I(isa.CVTSI2SD, isa.Xmm(0), isa.Gpr(isa.RAX))
	seq, err := DoubleSnippet(prod, Options{})
	if err != nil || seq != nil {
		t.Errorf("producer double snippet = %v, %v; want nil, nil", seq, err)
	}
}
