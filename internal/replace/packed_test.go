package replace

import (
	"math"
	"testing"

	"fpmix/internal/config"
	"fpmix/internal/isa"
	"fpmix/internal/prog"
	"fpmix/internal/vm"
)

// Packed (two-lane) replacement is exercised with hand-assembled code:
// the hl compiler emits scalar SSE only, but the paper's technique
// explicitly covers packed 128-bit XMM values (Figure 5: "this technique
// works for single values as well as packed floating-point values").

// packedProgram computes, entirely with packed instructions:
//
//	xmm0 = [a0, a1]; xmm1 = [b0, b1]
//	xmm0 = (xmm0 + xmm1) * xmm1   (lane-wise)
//	xmm2 = sqrt(xmm0)
//
// and outputs all four result lanes.
func packedProgram(t *testing.T, a0, a1, b0, b1 float64) *prog.Module {
	t.Helper()
	ld := func(x uint8, lo, hi float64) []isa.Instr {
		return []isa.Instr{
			isa.I(isa.MOVRI, isa.Gpr(isa.RAX), isa.Imm(int64(math.Float64bits(lo)))),
			isa.I(isa.MOVQ, isa.Xmm(x), isa.Gpr(isa.RAX)),
			isa.I(isa.MOVRI, isa.Gpr(isa.RAX), isa.Imm(int64(math.Float64bits(hi)))),
			isa.I(isa.MOVHQ, isa.Xmm(x), isa.Gpr(isa.RAX)),
		}
	}
	outLane := func(x uint8, lane int) []isa.Instr {
		seq := []isa.Instr{}
		if lane == 0 {
			seq = append(seq, isa.I(isa.MOVQ, isa.Gpr(isa.RAX), isa.Xmm(x)))
		} else {
			seq = append(seq, isa.I(isa.MOVHQ, isa.Gpr(isa.RAX), isa.Xmm(x)))
		}
		seq = append(seq,
			isa.I(isa.MOVQ, isa.Xmm(0), isa.Gpr(isa.RAX)),
			isa.I(isa.SYSCALL, isa.Imm(isa.SysOutF64)),
		)
		return seq
	}
	var instrs []isa.Instr
	instrs = append(instrs, ld(2, a0, a1)...)
	instrs = append(instrs, ld(1, b0, b1)...)
	instrs = append(instrs,
		isa.I(isa.ADDPD, isa.Xmm(2), isa.Xmm(1)),
		isa.I(isa.MULPD, isa.Xmm(2), isa.Xmm(1)),
		isa.I(isa.MOVAPD, isa.Xmm(3), isa.Xmm(2)),
		isa.I(isa.SQRTPD, isa.Xmm(3), isa.Xmm(3)),
	)
	instrs = append(instrs, outLane(2, 0)...)
	// outLane clobbers xmm0 lane0; results live in xmm2/xmm3 so reads stay
	// valid.
	instrs = append(instrs, outLane(2, 1)...)
	instrs = append(instrs, outLane(3, 0)...)
	instrs = append(instrs, outLane(3, 1)...)
	instrs = append(instrs, isa.I(isa.HALT))
	f := &prog.Func{Name: "main", Instrs: instrs}
	m, err := prog.Build("packed", []*prog.Func{f}, nil, prog.DataBase+1<<16, "main")
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func runPacked(t *testing.T, m *prog.Module) []uint64 {
	t.Helper()
	mach, err := vm.New(m)
	if err != nil {
		t.Fatal(err)
	}
	mach.TrapUnreplaced = true
	if err := mach.Run(); err != nil {
		t.Fatal(err)
	}
	out := make([]uint64, len(mach.Out))
	for i, o := range mach.Out {
		out[i] = o.Bits
	}
	return out
}

func TestPackedDoubleSnippetTransparent(t *testing.T) {
	m := packedProgram(t, 1.5, -2.25, 3.0, 0.5)
	c, err := config.FromModule(m)
	if err != nil {
		t.Fatal(err)
	}
	if n := len(c.Candidates()); n != 3 {
		t.Fatalf("packed candidates = %d, want 3", n)
	}
	c.SetAll(config.Double)
	inst, err := Instrument(m, c, InstrumentOptions{})
	if err != nil {
		t.Fatal(err)
	}
	want := runPacked(t, m)
	got := runPacked(t, inst)
	for i := range want {
		if want[i] != got[i] {
			t.Errorf("lane output %d: %#x != %#x", i, got[i], want[i])
		}
	}
}

func TestPackedSingleSnippetMatchesFloat32(t *testing.T) {
	a0, a1, b0, b1 := 1.5, -2.25, 3.0, 0.5
	m := packedProgram(t, a0, a1, b0, b1)
	c, err := config.FromModule(m)
	if err != nil {
		t.Fatal(err)
	}
	c.SetAll(config.Single)
	inst, err := Instrument(m, c, InstrumentOptions{})
	if err != nil {
		t.Fatal(err)
	}
	got := runPacked(t, inst)

	// Host float32 mirror, lane-wise.
	f32 := func(x float64) float32 { return float32(x) }
	r0 := (f32(a0) + f32(b0)) * f32(b0)
	r1 := (f32(a1) + f32(b1)) * f32(b1)
	s0 := float32(math.Sqrt(float64(r0)))
	s1 := float32(math.Sqrt(float64(r1)))
	want := []float32{r0, r1, s0, s1}
	for i, w := range want {
		bits := got[i]
		if !IsReplaced(bits) {
			t.Errorf("output %d not replaced: %#x", i, bits)
			continue
		}
		g := Payload(bits)
		if math.Float32bits(g) != math.Float32bits(w) && !(g != g && w != w) {
			t.Errorf("output %d: %v != %v", i, g, w)
		}
	}
}

// TestPackedMixedLanes: a packed double op consuming one replaced and one
// plain lane must upcast only the flagged lane.
func TestPackedMixedLanes(t *testing.T) {
	m := packedProgram(t, 2.0, 8.0, 4.0, 16.0)
	c, err := config.FromModule(m)
	if err != nil {
		t.Fatal(err)
	}
	// ADDPD single, MULPD and SQRTPD double: the multiply receives
	// replaced inputs from the add and must upcast both lanes.
	cands := c.Candidates()
	c.NodeAt(cands[0]).Flag = config.Single
	c.NodeAt(cands[1]).Flag = config.Double
	c.NodeAt(cands[2]).Flag = config.Double
	inst, err := Instrument(m, c, InstrumentOptions{})
	if err != nil {
		t.Fatal(err)
	}
	got := runPacked(t, inst)
	// Exact in float32 for these power-of-two-ish values, so results equal
	// the double computation exactly after upcast.
	want := []float64{(2 + 4) * 4, (8 + 16) * 16, math.Sqrt(24), math.Sqrt(384)}
	for i, w := range want {
		if Value(got[i]) != w {
			t.Errorf("output %d: %v != %v", i, Value(got[i]), w)
		}
	}
}

// TestPackedMemoryOperand: packed instructions with 16-byte memory
// source operands go through the promotion path.
func TestPackedMemoryOperand(t *testing.T) {
	base := int64(prog.DataBase)
	var instrs []isa.Instr
	// Store [3.0, 5.0] at DataBase.
	instrs = append(instrs,
		isa.I(isa.MOVRI, isa.Gpr(isa.RBX), isa.Imm(base)),
		isa.I(isa.MOVRI, isa.Gpr(isa.RAX), isa.Imm(int64(math.Float64bits(3.0)))),
		isa.I(isa.STORE, isa.Mem(isa.RBX, 0), isa.Gpr(isa.RAX)),
		isa.I(isa.MOVRI, isa.Gpr(isa.RAX), isa.Imm(int64(math.Float64bits(5.0)))),
		isa.I(isa.STORE, isa.Mem(isa.RBX, 8), isa.Gpr(isa.RAX)),
		// xmm2 = [1.0, 2.0]
		isa.I(isa.MOVRI, isa.Gpr(isa.RAX), isa.Imm(int64(math.Float64bits(1.0)))),
		isa.I(isa.MOVQ, isa.Xmm(2), isa.Gpr(isa.RAX)),
		isa.I(isa.MOVRI, isa.Gpr(isa.RAX), isa.Imm(int64(math.Float64bits(2.0)))),
		isa.I(isa.MOVHQ, isa.Xmm(2), isa.Gpr(isa.RAX)),
		// xmm2 += mem128
		isa.I(isa.ADDPD, isa.Xmm(2), isa.Mem(isa.RBX, 0)),
		isa.I(isa.MOVQ, isa.Gpr(isa.RAX), isa.Xmm(2)),
		isa.I(isa.MOVQ, isa.Xmm(0), isa.Gpr(isa.RAX)),
		isa.I(isa.SYSCALL, isa.Imm(isa.SysOutF64)),
		isa.I(isa.MOVHQ, isa.Gpr(isa.RAX), isa.Xmm(2)),
		isa.I(isa.MOVQ, isa.Xmm(0), isa.Gpr(isa.RAX)),
		isa.I(isa.SYSCALL, isa.Imm(isa.SysOutF64)),
		isa.I(isa.HALT),
	)
	f := &prog.Func{Name: "main", Instrs: instrs}
	m, err := prog.Build("pmem", []*prog.Func{f}, nil, prog.DataBase+1<<16, "main")
	if err != nil {
		t.Fatal(err)
	}
	for _, prec := range []config.Precision{config.Single, config.Double} {
		c, err := config.FromModule(m)
		if err != nil {
			t.Fatal(err)
		}
		c.SetAll(prec)
		inst, err := Instrument(m, c, InstrumentOptions{})
		if err != nil {
			t.Fatal(err)
		}
		got := runPacked(t, inst)
		if Value(got[0]) != 4.0 || Value(got[1]) != 7.0 {
			t.Errorf("%v: lanes = %v, %v; want 4, 7", prec, Value(got[0]), Value(got[1]))
		}
		// The memory operand itself must be untouched (promotion, not
		// write-back).
		mach, _ := vm.New(inst)
		_ = mach.Run()
		lo := math.Float64frombits(leU64(mach.Mem[prog.DataBase:]))
		if lo != 3.0 {
			t.Errorf("%v: memory operand modified: %v", prec, lo)
		}
	}
}

func leU64(b []byte) uint64 {
	var v uint64
	for i := 7; i >= 0; i-- {
		v = v<<8 | uint64(b[i])
	}
	return v
}
