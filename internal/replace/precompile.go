package replace

import (
	"fmt"

	"fpmix/internal/cfg"
	"fpmix/internal/config"
	"fpmix/internal/isa"
	"fpmix/internal/prog"
)

// CompiledSnippets caches, per candidate instruction of a module, the
// fully generated single- and double-precision replacement sequences with
// their layout metadata. A precision search evaluates hundreds of
// configurations of the same module; snippet generation depends only on
// the instruction and the snippet options, never on the configuration, so
// compiling the sequences once and splicing cached copies per evaluation
// removes the per-evaluation expansion cost entirely.
//
// A CompiledSnippets table is immutable after Precompile and safe for
// concurrent use by any number of assembly goroutines.
type CompiledSnippets struct {
	module *prog.Module
	opts   InstrumentOptions
	// single and double are keyed by candidate instruction address. A nil
	// entry (address present, value nil) means the instruction needs no
	// wrapper at that precision (double producers, skipped wrappers).
	single map[uint64]*cfg.Expansion
	double map[uint64]*cfg.Expansion
	// doubleSrcOnly and doubleDstOnly are the narrowed double wrappers
	// checking only the source respectively only the destination operand,
	// present when the narrowed form is strictly shorter than the full
	// wrapper. They are never sound whole-configuration choices; the
	// stable layout exposes them as extra variants that the fork-point
	// search selects per configuration when its flag analysis proves the
	// other operand clean.
	doubleSrcOnly map[uint64]*cfg.Expansion
	doubleDstOnly map[uint64]*cfg.Expansion
	// Snippet generation can fail for individual instructions (e.g.
	// RSP-relative memory operands). InstrumentMap only generates the
	// sequence a configuration asks for, so to stay equivalent the error
	// is recorded here and surfaced only when an assembly actually
	// requests that precision for that address.
	singleErr map[uint64]error
	doubleErr map[uint64]error
}

// Precompile generates and caches the replacement sequences for every
// candidate instruction of m under the given options.
func Precompile(m *prog.Module, opts InstrumentOptions) (*CompiledSnippets, error) {
	cs := &CompiledSnippets{
		module:        m,
		opts:          opts,
		single:        make(map[uint64]*cfg.Expansion),
		double:        make(map[uint64]*cfg.Expansion),
		doubleSrcOnly: make(map[uint64]*cfg.Expansion),
		doubleDstOnly: make(map[uint64]*cfg.Expansion),
		singleErr:     make(map[uint64]error),
		doubleErr:     make(map[uint64]error),
	}
	ana := opts.analysis(m)
	for _, f := range m.Funcs {
		for _, in := range f.Instrs {
			if !isa.IsCandidate(in.Op) {
				continue
			}
			so := opts.siteOptions(ana, in.Addr)
			if sseq, err := SingleSnippet(in, so); err != nil {
				cs.singleErr[in.Addr] = err
			} else {
				cs.single[in.Addr] = cfg.NewExpansion(sseq)
			}
			if opts.SkipDoubleSnippets {
				continue
			}
			dseq, err := DoubleSnippet(in, so)
			switch {
			case err != nil:
				cs.doubleErr[in.Addr] = err
			case dseq != nil:
				cs.double[in.Addr] = cfg.NewExpansion(dseq)
				// Narrowed wrappers, cached only when eliding the other
				// operand's check actually shortens the sequence (a site
				// whose full wrapper checks a single operand gains
				// nothing over it).
				srcSo, dstSo := so, so
				srcSo.CleanDstInput = true
				dstSo.CleanSrcInput = true
				if seq, err := DoubleSnippet(in, srcSo); err == nil && seq != nil && len(seq) < len(dseq) {
					cs.doubleSrcOnly[in.Addr] = cfg.NewExpansion(seq)
				}
				if seq, err := DoubleSnippet(in, dstSo); err == nil && seq != nil && len(seq) < len(dseq) {
					cs.doubleDstOnly[in.Addr] = cfg.NewExpansion(seq)
				}
			}
		}
	}
	return cs, nil
}

// Module returns the module the table was compiled from.
func (cs *CompiledSnippets) Module() *prog.Module { return cs.module }

// Instrument assembles the instrumented module for an effective-precision
// map by splicing cached sequences. It produces output byte-identical to
// InstrumentMap(module, eff, opts) but without re-running snippet
// generation. Addresses absent from eff default to Double; Ignore leaves
// the instruction untouched.
func (cs *CompiledSnippets) Instrument(eff map[uint64]config.Precision) (*prog.Module, error) {
	out, err := cfg.RewriteExpanded(cs.module, func(in isa.Instr) (*cfg.Expansion, error) {
		if !isa.IsCandidate(in.Op) {
			return nil, nil
		}
		p, ok := eff[in.Addr]
		if !ok {
			p = config.Double
		}
		switch p {
		case config.Ignore:
			return nil, nil
		case config.Single:
			if err := cs.singleErr[in.Addr]; err != nil {
				return nil, err
			}
			return cs.single[in.Addr], nil
		default:
			if err := cs.doubleErr[in.Addr]; err != nil {
				return nil, err
			}
			return cs.double[in.Addr], nil
		}
	})
	if err != nil {
		return nil, fmt.Errorf("replace: %w", err)
	}
	return out, nil
}
