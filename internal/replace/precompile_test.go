package replace_test

import (
	"bytes"
	"testing"

	"fpmix/internal/config"
	"fpmix/internal/kernels"
	"fpmix/internal/prog"
	"fpmix/internal/replace"
)

// effMaps builds representative effective-precision maps over the
// module's candidates: all single, all double, empty (default double),
// and a rotation mixing single/double/ignore.
func effMaps(m *prog.Module) map[string]map[uint64]config.Precision {
	cands := m.Candidates()
	allS := make(map[uint64]config.Precision, len(cands))
	allD := make(map[uint64]config.Precision, len(cands))
	mixed := make(map[uint64]config.Precision, len(cands))
	rot := []config.Precision{config.Single, config.Double, config.Ignore}
	for i, a := range cands {
		allS[a] = config.Single
		allD[a] = config.Double
		mixed[a] = rot[i%len(rot)]
	}
	return map[string]map[uint64]config.Precision{
		"single": allS,
		"double": allD,
		"empty":  {},
		"mixed":  mixed,
	}
}

// TestPrecompileMatchesInstrumentMap asserts cached-snippet assembly is
// byte-identical to from-scratch instrumentation on every kernel, across
// precision mixes and snippet option variants.
func TestPrecompileMatchesInstrumentMap(t *testing.T) {
	optVariants := map[string]replace.InstrumentOptions{
		"default":   {},
		"elision":   {Snippet: replace.Options{LivenessElision: true}},
		"unchecked": {Snippet: replace.Options{UncheckedDowncast: true}},
		"skipdbl":   {SkipDoubleSnippets: true},
	}
	for _, name := range kernels.Names() {
		bench, err := kernels.Get(name, kernels.ClassW)
		if err != nil {
			t.Fatal(err)
		}
		for oname, opts := range optVariants {
			cs, err := replace.Precompile(bench.Module, opts)
			if err != nil {
				t.Fatalf("%s/%s: precompile: %v", name, oname, err)
			}
			for ename, eff := range effMaps(bench.Module) {
				want, werr := replace.InstrumentMap(bench.Module, eff, opts)
				got, gerr := cs.Instrument(eff)
				if (werr == nil) != (gerr == nil) {
					t.Fatalf("%s/%s/%s: error divergence: scratch=%v cached=%v",
						name, oname, ename, werr, gerr)
				}
				if werr != nil {
					continue
				}
				wb, err := prog.Save(want)
				if err != nil {
					t.Fatal(err)
				}
				gb, err := prog.Save(got)
				if err != nil {
					t.Fatal(err)
				}
				if !bytes.Equal(wb, gb) {
					t.Errorf("%s/%s/%s: cached assembly differs from InstrumentMap", name, oname, ename)
				}
			}
		}
	}
}

// TestPrecompileReuse asserts one table serves many assemblies without
// cross-contamination: re-assembling the same configuration after other
// configurations were assembled yields identical bytes.
func TestPrecompileReuse(t *testing.T) {
	bench, err := kernels.Get("cg", kernels.ClassW)
	if err != nil {
		t.Fatal(err)
	}
	cs, err := replace.Precompile(bench.Module, replace.InstrumentOptions{})
	if err != nil {
		t.Fatal(err)
	}
	maps := effMaps(bench.Module)
	first, err := cs.Instrument(maps["mixed"])
	if err != nil {
		t.Fatal(err)
	}
	fb, _ := prog.Save(first)
	for _, other := range []string{"single", "double", "empty"} {
		if _, err := cs.Instrument(maps[other]); err != nil {
			t.Fatal(err)
		}
	}
	again, err := cs.Instrument(maps["mixed"])
	if err != nil {
		t.Fatal(err)
	}
	ab, _ := prog.Save(again)
	if !bytes.Equal(fb, ab) {
		t.Error("re-assembly after interleaved configurations diverged")
	}
}
