// Package replace implements the paper's core technique (§2.3): in-place
// replacement of double-precision instructions and operands with their
// single-precision equivalents inside an existing binary.
//
// A replaced value stores its 32-bit single-precision payload in the low
// half of the original 64-bit location; the high 32 bits hold the sentinel
// 0x7FF4DEAD (a non-signalling NaN pattern, so missed values never
// propagate silently, with a human-readable 0xDEAD tail for hex dumps —
// Figure 5). Every floating-point instruction of an instrumented program
// is expanded into a machine-code snippet (Figure 6) that checks its
// inputs for the flag, converts as needed, performs the operation at the
// configured precision, and re-stamps flags on outputs.
package replace

import (
	"math"

	"fpmix/internal/isa"
)

// Flag is the sentinel stored in the high 32 bits of a replaced value.
const Flag = isa.ReplacedFlag

// flagHi is the flag positioned in the high word of a 64-bit value.
const flagHi = uint64(Flag) << 32

// IsReplaced reports whether bits carries the replacement flag.
func IsReplaced(bits uint64) bool { return uint32(bits>>32) == Flag }

// Encode packs a float32 into a replaced 64-bit slot.
func Encode(f float32) uint64 {
	return flagHi | uint64(math.Float32bits(f))
}

// Payload extracts the single-precision payload of a replaced value.
func Payload(bits uint64) float32 {
	return math.Float32frombits(uint32(bits))
}

// Downcast converts double-precision bits to their replaced form, exactly
// as the generated snippet's cvtsd2ss + or sequence does.
func Downcast(doubleBits uint64) uint64 {
	return Encode(float32(math.Float64frombits(doubleBits)))
}

// Upcast converts a replaced value back to plain double-precision bits
// (cvtss2sd). Non-replaced values are returned unchanged.
func Upcast(bits uint64) uint64 {
	if !IsReplaced(bits) {
		return bits
	}
	return math.Float64bits(float64(Payload(bits)))
}

// Value interprets a possibly-replaced 64-bit slot as a float64 — the view
// an instrumented program's (snippet-wrapped) output conversion produces.
func Value(bits uint64) float64 {
	if IsReplaced(bits) {
		return float64(Payload(bits))
	}
	return math.Float64frombits(bits)
}
