// Package shadow is the shadow-value numerical analysis: one
// instrumented run per kernel in which the VM carries a single-precision
// shadow beside every double, producing a per-instruction sensitivity
// profile — relative error between shadow and reference, catastrophic
// cancellation, comparison/truncation divergences — plus error-flow
// attribution aggregated up the module/function/block piece tree. The
// profile is what lets the precision search order candidate pieces by
// predicted single-precision safety and skip aggregates that are
// predictably unsafe, instead of treating every piece as an opaque
// experiment (the step from the paper's breadth-first search toward
// CRAFT's shadow-value mode).
package shadow

import (
	"fmt"
	"sort"

	"fpmix/internal/config"
	"fpmix/internal/prog"
	"fpmix/internal/vm"
)

// Record is one instruction's sensitivity measurement.
type Record struct {
	Addr uint64
	Op   string // mnemonic, for reports; not used by consumers

	Execs   uint64 // executions
	Samples uint64 // executions that contributed an error sample

	// MaxRelErr and MeanRelErr are relative error between the
	// single-precision shadow and the double reference (scale floored at
	// 1, capped at 1.0; a discrete divergence records as 1.0).
	MaxRelErr  float64
	MeanRelErr float64

	// MaxCancelBits is the worst catastrophic cancellation on an
	// add/subtract.
	MaxCancelBits uint8

	// Divergences counts comparison/truncation outcome mismatches.
	Divergences uint64

	// LocalMaxErr and LocalDivergences are the same measured with true
	// double operands rounded to single for just this one step: the error
	// the instruction introduces intrinsically, free of upstream shadow
	// drift. This is the signal the search's prediction gate uses — the
	// global numbers above overestimate the effect of lowering one piece,
	// because every instruction downstream of a drifting value inherits
	// its error.
	LocalMaxErr      float64
	LocalDivergences uint64
}

// Profile is a kernel's sensitivity profile.
type Profile struct {
	Name    string
	Records []Record // address-sorted
	byAddr  map[uint64]int
}

// New builds a profile from VM shadow records.
func New(name string, recs []vm.ShadowRecord) *Profile {
	p := &Profile{Name: name}
	for _, r := range recs {
		p.Records = append(p.Records, Record{
			Addr:             r.Addr,
			Op:               r.Op.String(),
			Execs:            r.Execs,
			Samples:          r.Samples,
			MaxRelErr:        r.MaxRelErr,
			MeanRelErr:       r.MeanRelErr,
			MaxCancelBits:    r.MaxCancelBits,
			Divergences:      r.Divergences,
			LocalMaxErr:      r.LocalMaxErr,
			LocalDivergences: r.LocalDivergences,
		})
	}
	p.index()
	return p
}

func (p *Profile) index() {
	sort.Slice(p.Records, func(i, j int) bool { return p.Records[i].Addr < p.Records[j].Addr })
	p.byAddr = make(map[uint64]int, len(p.Records))
	for i := range p.Records {
		p.byAddr[p.Records[i].Addr] = i
	}
}

// Collect performs the shadow pass: one run of the unmodified module
// with the shadow enabled.
func Collect(name string, mod *prog.Module, maxSteps uint64) (*Profile, error) {
	lp, err := vm.Link(mod)
	if err != nil {
		return nil, err
	}
	m := lp.NewMachine()
	m.MaxSteps = maxSteps
	m.EnableShadow()
	if err := m.Run(); err != nil {
		return nil, fmt.Errorf("shadow: collection run: %w", err)
	}
	return New(name, m.ShadowRecords()), nil
}

// At returns the record for an instruction address.
func (p *Profile) At(addr uint64) (Record, bool) {
	if i, ok := p.byAddr[addr]; ok {
		return p.Records[i], true
	}
	return Record{}, false
}

// Err returns the instruction's max relative error (0 when unsampled —
// an instruction the shadow never saw predicts as safe, exactly like an
// unexecuted one).
func (p *Profile) Err(addr uint64) float64 {
	if i, ok := p.byAddr[addr]; ok {
		return p.Records[i].MaxRelErr
	}
	return 0
}

// AggErr returns the aggregated predicted error of a piece: the max over
// its instruction addresses. Max (not sum) because the shadow is carried
// globally, so each instruction's error already includes upstream drift.
func (p *Profile) AggErr(addrs []uint64) float64 {
	var e float64
	for _, a := range addrs {
		if v := p.Err(a); v > e {
			e = v
		}
	}
	return e
}

// AggLocalErr returns the max local (intrinsic, drift-free) error over a
// piece's instruction addresses — the prediction-gate signal.
func (p *Profile) AggLocalErr(addrs []uint64) float64 {
	var e float64
	for _, a := range addrs {
		if i, ok := p.byAddr[a]; ok {
			if v := p.Records[i].LocalMaxErr; v > e {
				e = v
			}
		}
	}
	return e
}

// Ranked returns records most-sensitive first: descending max relative
// error, then divergences, then cancellation, then address (ascending)
// for a stable order.
func (p *Profile) Ranked() []Record {
	recs := make([]Record, len(p.Records))
	copy(recs, p.Records)
	sort.Slice(recs, func(i, j int) bool {
		a, b := recs[i], recs[j]
		if a.MaxRelErr != b.MaxRelErr {
			return a.MaxRelErr > b.MaxRelErr
		}
		if a.Divergences != b.Divergences {
			return a.Divergences > b.Divergences
		}
		if a.MaxCancelBits != b.MaxCancelBits {
			return a.MaxCancelBits > b.MaxCancelBits
		}
		return a.Addr < b.Addr
	})
	return recs
}

// AnnotateConfig records each sampled instruction's sensitivity on the
// configuration tree as a classification note ("shadow err=… local=…"),
// which survives the exchange format as a trailing comment. Nodes that
// already carry a note (the dataflow classifications) are left alone.
// Returns the number of nodes annotated.
func AnnotateConfig(p *Profile, c *config.Config) int {
	n := 0
	for _, r := range p.Records {
		node := c.NodeAt(r.Addr)
		if node == nil || node.Note != "" {
			continue
		}
		note := fmt.Sprintf("shadow err=%.3g local=%.3g", r.MaxRelErr, r.LocalMaxErr)
		if r.MaxCancelBits > 0 {
			note += fmt.Sprintf(" cancel=%d", r.MaxCancelBits)
		}
		if r.Divergences > 0 {
			note += fmt.Sprintf(" div=%d", r.Divergences)
		}
		node.Note = note
		n++
	}
	return n
}

// NodeSummary is the error-flow attribution of one piece-tree node.
type NodeSummary struct {
	Kind  config.Kind
	ID    int
	Name  string
	Addr  uint64
	Depth int

	Insns   int     // sampled instructions beneath the node
	Execs   uint64  // their total executions
	MaxErr  float64 // worst instruction error beneath
	ErrMass float64 // Σ mean error × executions: where error flows

	MaxCancelBits uint8
	Divergences   uint64
}

// Attribute aggregates the profile up the configuration piece tree
// (module → function → block → instruction), returning one summary per
// node in preorder. Leaf instructions with no samples are omitted.
func Attribute(p *Profile, c *config.Config) []NodeSummary {
	var out []NodeSummary
	var walk func(n *config.Node, depth int) (NodeSummary, bool)
	walk = func(n *config.Node, depth int) (NodeSummary, bool) {
		s := NodeSummary{Kind: n.Kind, ID: n.ID, Name: n.Name, Addr: n.Addr, Depth: depth}
		if n.Kind == config.KindInsn {
			r, ok := p.At(n.Addr)
			if !ok || (r.Samples == 0 && r.Divergences == 0) {
				return s, false
			}
			s.Insns = 1
			s.Execs = r.Execs
			s.MaxErr = r.MaxRelErr
			s.ErrMass = r.MeanRelErr * float64(r.Execs)
			s.MaxCancelBits = r.MaxCancelBits
			s.Divergences = r.Divergences
			out = append(out, s)
			return s, true
		}
		at := len(out)
		out = append(out, s) // placeholder; filled after children
		any := false
		for _, ch := range n.Children {
			cs, ok := walk(ch, depth+1)
			if !ok {
				continue
			}
			any = true
			s.Insns += cs.Insns
			s.Execs += cs.Execs
			s.ErrMass += cs.ErrMass
			if cs.MaxErr > s.MaxErr {
				s.MaxErr = cs.MaxErr
			}
			if cs.MaxCancelBits > s.MaxCancelBits {
				s.MaxCancelBits = cs.MaxCancelBits
			}
			s.Divergences += cs.Divergences
		}
		if !any {
			out = append(out[:at], out[at+1:]...)
			return s, false
		}
		out[at] = s
		return s, true
	}
	walk(c.Root, 0)
	return out
}
