package shadow

import (
	"fmt"
	"io"
	"strconv"
	"strings"

	"fpmix/internal/profile"
)

// The sensitivity profile persists in the shared fpmix-profile text
// container (see internal/profile) as kind "shadow", one instruction per
// line:
//
//	fpmix-profile v1 shadow ep.W
//	# addr op execs samples maxrelerr meanrelerr cancelbits divergences localmaxerr localdivergences
//	0x001040 addsd 512 512 1.19e-07 3.1e-08 2 0 5.9e-08 0

// Kind is the container kind of sensitivity profiles.
const Kind = "shadow"

// Write persists the profile.
func Write(w io.Writer, p *Profile) error {
	if err := profile.WriteHeader(w, Kind, p.Name); err != nil {
		return err
	}
	if _, err := fmt.Fprintln(w, "# addr op execs samples maxrelerr meanrelerr cancelbits divergences localmaxerr localdivergences"); err != nil {
		return err
	}
	for _, r := range p.Records {
		_, err := fmt.Fprintf(w, "%#08x %s %d %d %.6g %.6g %d %d %.6g %d\n",
			r.Addr, r.Op, r.Execs, r.Samples, r.MaxRelErr, r.MeanRelErr, r.MaxCancelBits, r.Divergences,
			r.LocalMaxErr, r.LocalDivergences)
		if err != nil {
			return err
		}
	}
	return nil
}

// Read parses a persisted sensitivity profile.
func Read(r io.Reader) (*Profile, error) {
	p := &Profile{}
	name, err := profile.Body(r, Kind, func(t string) error {
		f := strings.Fields(t)
		if len(f) != 10 {
			return fmt.Errorf("shadow: bad record line %q", t)
		}
		var rec Record
		var err error
		if rec.Addr, err = strconv.ParseUint(f[0], 0, 64); err != nil {
			return fmt.Errorf("shadow: bad address %q: %v", f[0], err)
		}
		rec.Op = f[1]
		if rec.Execs, err = strconv.ParseUint(f[2], 10, 64); err != nil {
			return fmt.Errorf("shadow: bad execs %q: %v", f[2], err)
		}
		if rec.Samples, err = strconv.ParseUint(f[3], 10, 64); err != nil {
			return fmt.Errorf("shadow: bad samples %q: %v", f[3], err)
		}
		if rec.MaxRelErr, err = strconv.ParseFloat(f[4], 64); err != nil {
			return fmt.Errorf("shadow: bad maxrelerr %q: %v", f[4], err)
		}
		if rec.MeanRelErr, err = strconv.ParseFloat(f[5], 64); err != nil {
			return fmt.Errorf("shadow: bad meanrelerr %q: %v", f[5], err)
		}
		bits, err := strconv.ParseUint(f[6], 10, 8)
		if err != nil {
			return fmt.Errorf("shadow: bad cancelbits %q: %v", f[6], err)
		}
		rec.MaxCancelBits = uint8(bits)
		if rec.Divergences, err = strconv.ParseUint(f[7], 10, 64); err != nil {
			return fmt.Errorf("shadow: bad divergences %q: %v", f[7], err)
		}
		if rec.LocalMaxErr, err = strconv.ParseFloat(f[8], 64); err != nil {
			return fmt.Errorf("shadow: bad localmaxerr %q: %v", f[8], err)
		}
		if rec.LocalDivergences, err = strconv.ParseUint(f[9], 10, 64); err != nil {
			return fmt.Errorf("shadow: bad localdivergences %q: %v", f[9], err)
		}
		p.Records = append(p.Records, rec)
		return nil
	})
	if err != nil {
		return nil, err
	}
	p.Name = name
	p.index()
	return p, nil
}
