package shadow

import (
	"bytes"
	"testing"

	"fpmix/internal/config"
	"fpmix/internal/hl"
	"fpmix/internal/prog"
)

// mixedProgram builds one single-safe function (float32-exact sums) and
// one precision-sensitive function (increments that vanish in float32).
func mixedProgram(t *testing.T) *prog.Module {
	t.Helper()
	p := hl.New("mixed", hl.ModeF64)
	a := p.ArrayInit("a", []float64{1.5, 2.25, 3.0, 0.5, 4.75, 8.5, 1.25, 2.0})
	safeSum := p.Scalar("safeSum")
	tiny := p.Scalar("tiny")
	i := p.Int("i")

	main := p.Func("main")
	main.Call("safe")
	main.Call("sensitive")
	main.Out(hl.Load(safeSum))
	main.Out(hl.Load(tiny))
	main.Halt()

	sf := p.Func("safe")
	sf.For(i, hl.IConst(0), hl.IConst(8), func() {
		sf.Set(safeSum, hl.Add(hl.Load(safeSum), hl.At(a, hl.ILoad(i))))
	})
	sf.Ret()

	sn := p.Func("sensitive")
	sn.Set(tiny, hl.Const(1.0))
	sn.For(i, hl.IConst(0), hl.IConst(200), func() {
		sn.Set(tiny, hl.Add(hl.Load(tiny), hl.Const(1e-9)))
	})
	sn.Ret()
	m, err := p.Build("main")
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// funcAddrs maps function name to its candidate instruction addresses.
func funcAddrs(t *testing.T, m *prog.Module) map[string][]uint64 {
	t.Helper()
	c, err := config.FromModule(m)
	if err != nil {
		t.Fatal(err)
	}
	out := make(map[string][]uint64)
	var fn string
	c.Walk(func(n *config.Node) {
		switch n.Kind {
		case config.KindFunc:
			fn = n.Name
		case config.KindInsn:
			out[fn] = append(out[fn], n.Addr)
		}
	})
	return out
}

func TestCollectSeparatesSafeFromSensitive(t *testing.T) {
	m := mixedProgram(t)
	p, err := Collect("mixed", m, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Records) == 0 {
		t.Fatal("no records")
	}
	fa := funcAddrs(t, m)
	safe, sens := p.AggErr(fa["safe"]), p.AggErr(fa["sensitive"])
	if safe != 0 {
		t.Errorf("safe function AggErr = %g, want 0 (float32-exact sums)", safe)
	}
	if sens < 1e-8 {
		t.Errorf("sensitive function AggErr = %g, want ~2e-7 accumulated drift", sens)
	}
	// The top-ranked instruction belongs to the sensitive function.
	top := p.Ranked()[0]
	found := false
	for _, a := range fa["sensitive"] {
		if a == top.Addr {
			found = true
		}
	}
	if !found {
		t.Errorf("top-ranked %#x not in sensitive function", top.Addr)
	}
}

func TestFormatRoundTrip(t *testing.T) {
	m := mixedProgram(t)
	p, err := Collect("mixed", m, 0)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := Write(&buf, p); err != nil {
		t.Fatal(err)
	}
	back, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Name != p.Name {
		t.Errorf("name %q, want %q", back.Name, p.Name)
	}
	if len(back.Records) != len(p.Records) {
		t.Fatalf("records %d, want %d", len(back.Records), len(p.Records))
	}
	for i := range p.Records {
		a, b := p.Records[i], back.Records[i]
		// Floats round-trip through %.6g: compare within that precision.
		if a.Addr != b.Addr || a.Op != b.Op || a.Execs != b.Execs ||
			a.Samples != b.Samples || a.MaxCancelBits != b.MaxCancelBits ||
			a.Divergences != b.Divergences {
			t.Errorf("record %d: %+v != %+v", i, a, b)
		}
		if relDiff(a.MaxRelErr, b.MaxRelErr) > 1e-5 || relDiff(a.MeanRelErr, b.MeanRelErr) > 1e-5 {
			t.Errorf("record %d errors drifted: %+v != %+v", i, a, b)
		}
	}
}

func relDiff(a, b float64) float64 {
	d := a - b
	if d < 0 {
		d = -d
	}
	if a < 0 {
		a = -a
	}
	if a > 1 {
		return d / a
	}
	return d
}

func TestReadRejectsWrongKind(t *testing.T) {
	if _, err := Read(bytes.NewBufferString("fpmix-profile v1 counts ep.W\n")); err == nil {
		t.Error("wrong kind accepted")
	}
	if _, err := Read(bytes.NewBufferString("not a profile\n")); err == nil {
		t.Error("garbage accepted")
	}
	if _, err := Read(bytes.NewBufferString("fpmix-profile v9 shadow x\n")); err == nil {
		t.Error("future version accepted")
	}
}

func TestAttributeAggregatesUpTree(t *testing.T) {
	m := mixedProgram(t)
	p, err := Collect("mixed", m, 0)
	if err != nil {
		t.Fatal(err)
	}
	c, err := config.FromModule(m)
	if err != nil {
		t.Fatal(err)
	}
	sums := Attribute(p, c)
	if len(sums) == 0 {
		t.Fatal("no summaries")
	}
	if sums[0].Kind != config.KindModule {
		t.Fatalf("first summary %v, want module", sums[0].Kind)
	}
	var safe, sens *NodeSummary
	for i := range sums {
		if sums[i].Kind == config.KindFunc {
			switch sums[i].Name {
			case "safe":
				safe = &sums[i]
			case "sensitive":
				sens = &sums[i]
			}
		}
	}
	if safe == nil || sens == nil {
		t.Fatal("missing function summaries")
	}
	if sens.MaxErr <= safe.MaxErr {
		t.Errorf("sensitive MaxErr %g <= safe %g", sens.MaxErr, safe.MaxErr)
	}
	if sens.ErrMass <= 0 {
		t.Errorf("sensitive ErrMass = %g, want > 0", sens.ErrMass)
	}
	// Module-level summary dominates its children.
	if sums[0].MaxErr != p.Ranked()[0].MaxRelErr {
		t.Errorf("module MaxErr %g != profile max %g", sums[0].MaxErr, p.Ranked()[0].MaxRelErr)
	}
	if sums[0].Insns < safe.Insns+sens.Insns {
		t.Errorf("module Insns %d < %d+%d", sums[0].Insns, safe.Insns, sens.Insns)
	}
}
