package jobs

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"

	"fpmix/internal/search"
)

// Job is one stored search job: its spec, lifecycle state, fingerprint
// and timestamps. Store methods hand out copies — the store's own
// record only changes through Update, which persists every transition.
type Job struct {
	ID   string `json:"id"`
	Name string `json:"name"` // workload label, e.g. "ep.W"
	Spec Spec   `json:"spec"`

	State State  `json:"state"`
	Error string `json:"error,omitempty"`

	// Image and Options are the journal fingerprint fields (Image also
	// scopes the shared verdict cache). Recorded at creation so a
	// restarted server validates resumability without rebuilding the
	// target first.
	Image   string `json:"image,omitempty"`
	Options string `json:"options,omitempty"`

	Created  time.Time `json:"created"`
	Started  time.Time `json:"started,omitempty"`
	Finished time.Time `json:"finished,omitempty"`

	// Recovered counts server restarts this job survived while running
	// (each recovery re-queues it; the journal carries the settled work).
	Recovered int `json:"recovered,omitempty"`
}

// Fingerprint reassembles the job's journal fingerprint.
func (j *Job) Fingerprint() search.Fingerprint {
	return search.Fingerprint{Image: j.Image, Options: j.Options}
}

// Store is the durable job store: one directory per job under root,
// each holding job.json (spec + state), the job's checkpoint journal,
// and on completion the final configuration and summary. Opening a
// store recovers jobs a dead server left running — they re-queue, and
// their journals replay the work already settled.
type Store struct {
	mu   sync.Mutex
	dir  string
	jobs map[string]*Job
	seq  int
	// recovered lists the IDs re-queued at open, for the server to
	// relaunch.
	recovered []string
}

// Open loads (or initializes) a job store rooted at dir.
func Open(dir string) (*Store, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	st := &Store{dir: dir, jobs: make(map[string]*Job)}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	for _, e := range entries {
		if !e.IsDir() {
			continue
		}
		var j Job
		data, err := os.ReadFile(filepath.Join(dir, e.Name(), "job.json"))
		if err != nil {
			continue // not a job dir (e.g. the cache dir)
		}
		if err := json.Unmarshal(data, &j); err != nil {
			return nil, fmt.Errorf("jobs: corrupt record %s: %w", e.Name(), err)
		}
		if j.ID != e.Name() {
			return nil, fmt.Errorf("jobs: record %s claims ID %s", e.Name(), j.ID)
		}
		var seq int
		if _, err := fmt.Sscanf(j.ID, "j%d", &seq); err == nil && seq > st.seq {
			st.seq = seq
		}
		if j.State == StateRunning {
			// The server died mid-run: re-queue. The journal in the job
			// dir carries every verdict that settled before the death, so
			// the relaunched search resumes instead of restarting.
			j.State = StateQueued
			j.Recovered++
			if err := st.persist(&j); err != nil {
				return nil, err
			}
			st.recovered = append(st.recovered, j.ID)
		}
		st.jobs[j.ID] = &j
	}
	sort.Strings(st.recovered)
	return st, nil
}

// Dir returns the store root.
func (s *Store) Dir() string { return s.dir }

// Recovered lists the jobs re-queued at open (running when the previous
// server died), in ID order.
func (s *Store) Recovered() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]string(nil), s.recovered...)
}

// Create validates the spec, assigns an ID and persists the job in
// state queued. The fingerprint is recorded immediately so restarts can
// validate the journal without rebuilding the target.
func (s *Store) Create(spec Spec) (Job, error) {
	spec = spec.withDefaults()
	if err := spec.Validate(); err != nil {
		return Job{}, err
	}
	t, err := spec.Build()
	if err != nil {
		return Job{}, err
	}
	fp, err := spec.Fingerprint(t.Module)
	if err != nil {
		return Job{}, err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.seq++
	j := &Job{
		ID:      fmt.Sprintf("j%04d", s.seq),
		Name:    spec.Name(),
		Spec:    spec,
		State:   StateQueued,
		Image:   fp.Image,
		Options: fp.Options,
		Created: time.Now().UTC(),
	}
	if err := os.MkdirAll(filepath.Join(s.dir, j.ID), 0o755); err != nil {
		return Job{}, err
	}
	if err := s.persist(j); err != nil {
		return Job{}, err
	}
	s.jobs[j.ID] = j
	return *j, nil
}

// Get returns a copy of the job.
func (s *Store) Get(id string) (Job, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	if !ok {
		return Job{}, false
	}
	return *j, true
}

// List returns copies of every job, in ID order.
func (s *Store) List() []Job {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]Job, 0, len(s.jobs))
	for _, j := range s.jobs {
		out = append(out, *j)
	}
	sort.Slice(out, func(i, k int) bool { return out[i].ID < out[k].ID })
	return out
}

// Transition moves a job along a legal state-machine edge and persists
// the new state. errmsg annotates a failure; Started/Finished stamp
// automatically.
func (s *Store) Transition(id string, to State, errmsg string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	if !ok {
		return fmt.Errorf("jobs: no job %s", id)
	}
	if !canTransition(j.State, to) {
		return fmt.Errorf("jobs: job %s: illegal transition %s → %s", id, j.State, to)
	}
	j.State = to
	j.Error = errmsg
	now := time.Now().UTC()
	switch to {
	case StateRunning:
		j.Started = now
	case StateDone, StateFailed, StateCancelled:
		j.Finished = now
	}
	return s.persist(j)
}

// Requeue puts a running job back to queued without counting it as a
// request transition — the graceful-shutdown edge (the server stops,
// the job's journal keeps its work, the next server resumes it).
func (s *Store) Requeue(id string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	if !ok {
		return fmt.Errorf("jobs: no job %s", id)
	}
	if j.State != StateRunning {
		return nil
	}
	j.State = StateQueued
	j.Recovered++
	return s.persist(j)
}

// persist writes the job record atomically (write-temp + rename), so a
// crash never leaves a half-written job.json. Callers hold s.mu.
func (s *Store) persist(j *Job) error {
	data, err := json.MarshalIndent(j, "", "  ")
	if err != nil {
		return err
	}
	dir := filepath.Join(s.dir, j.ID)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	tmp := filepath.Join(dir, ".job.json.tmp")
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, filepath.Join(dir, "job.json"))
}

// JournalPath, ResultPath and SummaryPath locate a job's artifacts.
func (s *Store) JournalPath(id string) string {
	return filepath.Join(s.dir, id, "journal.ckpt")
}
func (s *Store) ResultPath(id string) string {
	return filepath.Join(s.dir, id, "result.cfg")
}
func (s *Store) SummaryPath(id string) string {
	return filepath.Join(s.dir, id, "summary.json")
}

// OpenJournal opens the job's checkpoint journal: fresh for a new job,
// resumed (fingerprint-validated, torn tail truncated) when a previous
// server incarnation already journaled verdicts. resumed reports how
// many settled verdicts the journal carries forward.
func (s *Store) OpenJournal(id string, fp search.Fingerprint) (j *search.Journal, resumed int, err error) {
	path := s.JournalPath(id)
	if _, serr := os.Stat(path); serr == nil {
		jr, err := search.ResumeJournal(path, fp)
		if err != nil {
			return nil, 0, err
		}
		return jr, jr.Prior(), nil
	}
	jr, err := search.NewJournal(path, fp)
	if err != nil {
		return nil, 0, err
	}
	return jr, 0, nil
}
