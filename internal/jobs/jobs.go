// Package jobs is the durable job store of the fpmixd search service: a
// job state machine over per-job directories, spec validation, and the
// generalization of the search's checkpoint journal — every job's
// verdict journal is fingerprint-validated (image digest + option set)
// and resumable across server restarts — plus the shared cross-job
// verdict cache that deduplicates evaluation work between jobs over the
// same program image.
package jobs

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"io"

	"fpmix/internal/config"
	"fpmix/internal/kernels"
	"fpmix/internal/prog"
	"fpmix/internal/search"
	"fpmix/internal/verify"
	"fpmix/internal/vm"
)

// State is a job's position in its lifecycle.
type State string

// The job state machine:
//
//	queued ──► running ──► done
//	              │  ├───► failed
//	              │  └───► cancelled
//	              └(server death)─► queued   (recovered at store open;
//	                                          the journal carries the work)
const (
	StateQueued    State = "queued"
	StateRunning   State = "running"
	StateDone      State = "done"
	StateFailed    State = "failed"
	StateCancelled State = "cancelled"
)

// Terminal reports whether no further transitions leave the state.
func (s State) Terminal() bool {
	return s == StateDone || s == StateFailed || s == StateCancelled
}

// valid transitions; recovery (running → queued at store open) is
// handled separately because it is a crash edge, not a request.
var transitions = map[State][]State{
	StateQueued:  {StateRunning, StateCancelled},
	StateRunning: {StateDone, StateFailed, StateCancelled},
}

// canTransition reports whether from → to is a legal request edge.
func canTransition(from, to State) bool {
	for _, t := range transitions[from] {
		if t == to {
			return true
		}
	}
	return false
}

// VerifierSpec is the acceptance routine an uploaded-image job declares
// (kernel jobs carry their own verification). The reference outputs are
// the image's own double-precision run.
type VerifierSpec struct {
	// Mode: "rel" accepts outputs whose maximum elementwise relative
	// error against the reference stays within Tol; "bitexact" requires
	// bit-identical outputs.
	Mode string  `json:"mode"`
	Tol  float64 `json:"tol,omitempty"`
}

func (v *VerifierSpec) validate() error {
	switch v.Mode {
	case "rel":
		if !(v.Tol > 0) {
			return fmt.Errorf("jobs: verifier mode %q needs tol > 0", v.Mode)
		}
	case "bitexact":
		if v.Tol != 0 {
			return fmt.Errorf("jobs: verifier mode %q takes no tol", v.Mode)
		}
	default:
		return fmt.Errorf("jobs: unknown verifier mode %q (have rel, bitexact)", v.Mode)
	}
	return nil
}

// Spec describes one search job: what to search (a registered kernel,
// or an uploaded module image plus a verifier spec) and the options
// that shape the search trajectory.
type Spec struct {
	// Kernel names a registered benchmark (kernels.Names()); Class its
	// input class (default W). Mutually exclusive with Image.
	Kernel string `json:"kernel,omitempty"`
	Class  string `json:"class,omitempty"`

	// Image is a serialized module (prog.Save) to search instead of a
	// kernel; Verifier is required with it, and MaxSteps optionally
	// bounds instrumented runs.
	Image    []byte        `json:"image,omitempty"`
	Verifier *VerifierSpec `json:"verifier,omitempty"`
	MaxSteps uint64        `json:"max_steps,omitempty"`

	// Granularity is the finest search level: func, block or insn
	// (default insn).
	Granularity string `json:"granularity,omitempty"`
	// Trajectory switches, mirroring the fpsearch flags.
	NoSens  bool `json:"nosens,omitempty"`
	NoPrune bool `json:"noprune,omitempty"`
	NoProve bool `json:"noprove,omitempty"`
	NoFork  bool `json:"nofork,omitempty"`
	// Chaos arms seeded fault injection on evaluations (a self-test:
	// the final configuration must not change). 0 = off.
	Chaos int64 `json:"chaos,omitempty"`
}

// withDefaults returns the spec with empty fields defaulted.
func (sp Spec) withDefaults() Spec {
	if sp.Kernel != "" && sp.Class == "" {
		sp.Class = "W"
	}
	if sp.Granularity == "" {
		sp.Granularity = "insn"
	}
	return sp
}

// Validate rejects malformed specs with an actionable error.
func (sp Spec) Validate() error {
	sp = sp.withDefaults()
	switch {
	case sp.Kernel == "" && len(sp.Image) == 0:
		return fmt.Errorf("jobs: spec needs a kernel name or an uploaded image")
	case sp.Kernel != "" && len(sp.Image) != 0:
		return fmt.Errorf("jobs: kernel and image are mutually exclusive")
	}
	switch sp.Granularity {
	case "func", "block", "insn":
	default:
		return fmt.Errorf("jobs: unknown granularity %q (have func, block, insn)", sp.Granularity)
	}
	if sp.Kernel != "" {
		known := false
		for _, n := range kernels.Names() {
			if n == sp.Kernel {
				known = true
				break
			}
		}
		if !known {
			return fmt.Errorf("jobs: unknown kernel %q (have %v)", sp.Kernel, kernels.Names())
		}
		switch kernels.Class(sp.Class) {
		case kernels.ClassW, kernels.ClassA, kernels.ClassC:
		default:
			return fmt.Errorf("jobs: unknown class %q (have W, A, C)", sp.Class)
		}
		if sp.Verifier != nil {
			return fmt.Errorf("jobs: kernel jobs carry their own verification; verifier is for uploaded images")
		}
		return nil
	}
	if sp.Verifier == nil {
		return fmt.Errorf("jobs: uploaded-image jobs need a verifier spec")
	}
	if err := sp.Verifier.validate(); err != nil {
		return err
	}
	if _, err := prog.Load(sp.Image); err != nil {
		return fmt.Errorf("jobs: image does not parse: %w", err)
	}
	return nil
}

// Name is the job's human-readable workload label ("ep.W", or
// "image:<digest prefix>" for uploads).
func (sp Spec) Name() string {
	sp = sp.withDefaults()
	if sp.Kernel != "" {
		return sp.Kernel + "." + sp.Class
	}
	sum := sha256.Sum256(sp.Image)
	return "image:" + hex.EncodeToString(sum[:4])
}

// Build constructs the search target the spec describes. For an
// uploaded image the reference outputs come from the image's own
// double-precision run, which must complete cleanly.
func (sp Spec) Build() (search.Target, error) {
	sp = sp.withDefaults()
	if sp.Kernel != "" {
		b, err := kernels.Get(sp.Kernel, kernels.Class(sp.Class))
		if err != nil {
			return search.Target{}, err
		}
		return search.Target{
			Module:   b.Module,
			Verify:   b.Verify,
			MaxSteps: b.MaxSteps,
			Base:     b.Base,
		}, nil
	}
	m, err := prog.Load(sp.Image)
	if err != nil {
		return search.Target{}, fmt.Errorf("jobs: image does not parse: %w", err)
	}
	mach, err := vm.New(m)
	if err != nil {
		return search.Target{}, err
	}
	mach.MaxSteps = sp.MaxSteps
	if err := mach.Run(); err != nil {
		return search.Target{}, fmt.Errorf("jobs: reference run of uploaded image failed: %w", err)
	}
	ref := verify.Decode(mach.Out)
	var vf func([]vm.OutVal) bool
	switch sp.Verifier.Mode {
	case "bitexact":
		vf = verify.BitExact(ref)
	default:
		vf = verify.Tolerance(ref, sp.Verifier.Tol)
	}
	return search.Target{Module: m, Verify: vf, MaxSteps: sp.MaxSteps}, nil
}

// SensTol is the verifier tolerance the sensitivity gate compares
// against (0 disables gating).
func (sp Spec) SensTol() (float64, error) {
	sp = sp.withDefaults()
	if sp.Kernel != "" {
		b, err := kernels.Get(sp.Kernel, kernels.Class(sp.Class))
		if err != nil {
			return 0, err
		}
		return b.SensTol, nil
	}
	if sp.Verifier != nil && sp.Verifier.Mode == "rel" {
		return sp.Verifier.Tol, nil
	}
	return 0, nil
}

// Granularity as a config.Kind.
func (sp Spec) Kind() config.Kind {
	switch sp.withDefaults().Granularity {
	case "func":
		return config.KindFunc
	case "block":
		return config.KindBlock
	default:
		return config.KindInsn
	}
}

// Fingerprint derives the job's journal fingerprint from its built
// module. The Image field scopes verdict validity (module image,
// verification identity, step budget — everything a verdict depends on
// besides the address set), so it doubles as the shared verdict-cache
// scope; the Options field captures the search shape, which only
// affects the trajectory.
func (sp Spec) Fingerprint(m *prog.Module) (search.Fingerprint, error) {
	sp = sp.withDefaults()
	img, err := search.ModuleFingerprint(m)
	if err != nil {
		return search.Fingerprint{}, err
	}
	h := sha256.New()
	io.WriteString(h, img)
	if sp.Kernel != "" {
		fmt.Fprintf(h, "|verify=kernel:%s.%s", sp.Kernel, sp.Class)
	} else {
		fmt.Fprintf(h, "|verify=%s:%g|maxsteps=%d", sp.Verifier.Mode, sp.Verifier.Tol, sp.MaxSteps)
	}
	return search.Fingerprint{
		Image: hex.EncodeToString(h.Sum(nil)),
		Options: fmt.Sprintf("%s gran=%s sens=%t prune=%t prove=%t fork=%t chaos=%d",
			sp.Name(), sp.Granularity, !sp.NoSens, !sp.NoPrune, !sp.NoProve, !sp.NoFork, sp.Chaos),
	}, nil
}
