package jobs

import (
	"bufio"
	"encoding/hex"
	"fmt"
	"os"
	"strings"
	"sync"

	"fpmix/internal/search"
)

// cacheMagic heads the shared verdict-cache file.
const cacheMagic = "fpmix-verdicts v1"

// cacheSyncBatch bounds how many appended entries may be awaiting an
// fsync before one is forced.
const cacheSyncBatch = 64

// Cache is the shared cross-job verdict cache: every evaluated or
// proved piece verdict of every job, keyed by (scope, address-set key)
// where the scope is the job's image fingerprint — module image,
// verification identity and step budget. Two jobs over the same image
// therefore share verdicts no matter who submitted them or when, which
// is what makes re-submitting a search cheap: the second job replays
// the first's evaluations as cache hits.
//
// The cache is append-only on disk (one atomic O_APPEND line per
// verdict, fsynced in batches and at Close; a torn final line is
// skipped on load) and fully mirrored in memory, so lookups never
// touch the disk.
type Cache struct {
	mu      sync.Mutex
	f       *os.File
	entries map[string]search.CachedVerdict // scope + "\x00" + key
	pending int
}

// OpenCache opens (or creates) the verdict cache at path, loading every
// complete entry.
func OpenCache(path string) (*Cache, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR|os.O_APPEND, 0o644)
	if err != nil {
		return nil, err
	}
	c := &Cache{f: f, entries: make(map[string]search.CachedVerdict)}
	br := bufio.NewReader(f)
	header, err := br.ReadString('\n')
	if err != nil {
		if header == "" {
			// Fresh file: write the header.
			if _, werr := fmt.Fprintf(f, "%s\n", cacheMagic); werr != nil {
				f.Close()
				return nil, werr
			}
			return c, nil
		}
		f.Close()
		return nil, fmt.Errorf("jobs: %s: torn verdict-cache header %q", path, header)
	}
	if strings.TrimSuffix(header, "\n") != cacheMagic {
		f.Close()
		return nil, fmt.Errorf("jobs: %s is not a verdict cache (header %q)", path, strings.TrimSuffix(header, "\n"))
	}
	for {
		line, err := br.ReadString('\n')
		if err != nil || !strings.HasSuffix(line, "\n") {
			break // EOF or torn final append: skip
		}
		fields := strings.Fields(strings.TrimSuffix(line, "\n"))
		if len(fields) < 3 || (fields[2] != "pass" && fields[2] != "fail") {
			continue // unknown line shape: tolerate, future fields may appear
		}
		key, err := hex.DecodeString(fields[1])
		if err != nil {
			continue
		}
		v := search.CachedVerdict{Pass: fields[2] == "pass"}
		for _, fl := range fields[3:] {
			if fl == "proved" {
				v.Proved = true
			}
		}
		c.entries[fields[0]+"\x00"+string(key)] = v
	}
	return c, nil
}

// Len is the number of cached verdicts (across all scopes).
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}

// Sync forces pending appends to disk.
func (c *Cache) Sync() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.syncLocked()
}

func (c *Cache) syncLocked() error {
	if c.f == nil || c.pending == 0 {
		return nil
	}
	if err := c.f.Sync(); err != nil {
		return err
	}
	c.pending = 0
	return nil
}

// Close syncs and releases the cache file; the in-memory view keeps
// serving (a closed cache just stops persisting).
func (c *Cache) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.f == nil {
		return nil
	}
	serr := c.syncLocked()
	err := c.f.Close()
	c.f = nil
	if err == nil {
		err = serr
	}
	return err
}

// Scope returns the cache view a search consults: lookups and stores
// bound to one image fingerprint, implementing search.VerdictCache.
func (c *Cache) Scope(scope string) search.VerdictCache {
	return scoped{c: c, scope: scope}
}

type scoped struct {
	c     *Cache
	scope string
}

func (s scoped) Lookup(key string) (search.CachedVerdict, bool) {
	s.c.mu.Lock()
	defer s.c.mu.Unlock()
	v, ok := s.c.entries[s.scope+"\x00"+key]
	return v, ok
}

func (s scoped) Store(key string, v search.CachedVerdict) {
	s.c.mu.Lock()
	defer s.c.mu.Unlock()
	mk := s.scope + "\x00" + key
	if old, ok := s.c.entries[mk]; ok && old == v {
		return // already persisted
	}
	s.c.entries[mk] = v
	if s.c.f == nil {
		return
	}
	verdict := "fail"
	if v.Pass {
		verdict = "pass"
	}
	line := fmt.Sprintf("%s %s %s", s.scope, hex.EncodeToString([]byte(key)), verdict)
	if v.Proved {
		line += " proved"
	}
	if _, err := fmt.Fprintln(s.c.f, line); err != nil {
		return // cache persistence is best-effort; memory stays authoritative
	}
	s.c.pending++
	if s.c.pending >= cacheSyncBatch {
		_ = s.c.syncLocked()
	}
}
