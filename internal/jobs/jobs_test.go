package jobs

import (
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"fpmix/internal/kernels"
	"fpmix/internal/prog"
	"fpmix/internal/search"
)

func TestSpecValidate(t *testing.T) {
	img := testImage(t)
	cases := []struct {
		name string
		spec Spec
		want string // substring of the error, "" = valid
	}{
		{"empty", Spec{}, "kernel name or an uploaded image"},
		{"kernel ok", Spec{Kernel: "ep"}, ""},
		{"kernel+class ok", Spec{Kernel: "mg", Class: "A"}, ""},
		{"unknown kernel", Spec{Kernel: "nope"}, "unknown kernel"},
		{"unknown class", Spec{Kernel: "ep", Class: "Z"}, "unknown class"},
		{"bad gran", Spec{Kernel: "ep", Granularity: "nibble"}, "unknown granularity"},
		{"both", Spec{Kernel: "ep", Image: img}, "mutually exclusive"},
		{"kernel verifier", Spec{Kernel: "ep", Verifier: &VerifierSpec{Mode: "rel", Tol: 1e-8}}, "carry their own"},
		{"image no verifier", Spec{Image: img}, "need a verifier"},
		{"image ok", Spec{Image: img, Verifier: &VerifierSpec{Mode: "rel", Tol: 1e-8}}, ""},
		{"image bitexact ok", Spec{Image: img, Verifier: &VerifierSpec{Mode: "bitexact"}}, ""},
		{"bad verifier mode", Spec{Image: img, Verifier: &VerifierSpec{Mode: "vibes"}}, "unknown verifier mode"},
		{"rel needs tol", Spec{Image: img, Verifier: &VerifierSpec{Mode: "rel"}}, "tol > 0"},
		{"bad image", Spec{Image: []byte("junk"), Verifier: &VerifierSpec{Mode: "bitexact"}}, "does not parse"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			err := c.spec.Validate()
			if c.want == "" {
				if err != nil {
					t.Fatalf("unexpected error: %v", err)
				}
				return
			}
			if err == nil || !strings.Contains(err.Error(), c.want) {
				t.Fatalf("error %v does not mention %q", err, c.want)
			}
		})
	}
}

// testImage serializes a small kernel module as an uploaded image.
func testImage(t *testing.T) []byte {
	t.Helper()
	b, err := kernels.Get("ep", kernels.ClassW)
	if err != nil {
		t.Fatal(err)
	}
	img, err := prog.Save(b.Module)
	if err != nil {
		t.Fatal(err)
	}
	return img
}

func TestSpecFingerprintScoping(t *testing.T) {
	epW := Spec{Kernel: "ep", Class: "W"}
	tgt, err := epW.Build()
	if err != nil {
		t.Fatal(err)
	}
	fp1, err := epW.Fingerprint(tgt.Module)
	if err != nil {
		t.Fatal(err)
	}
	fp2, err := epW.Fingerprint(tgt.Module)
	if err != nil {
		t.Fatal(err)
	}
	if fp1 != fp2 {
		t.Error("fingerprint not deterministic")
	}
	// A different trajectory shape shares the image scope (verdicts stay
	// valid) but differs in the option set (journals do not transfer).
	noSens := Spec{Kernel: "ep", Class: "W", NoSens: true}
	fp3, err := noSens.Fingerprint(tgt.Module)
	if err != nil {
		t.Fatal(err)
	}
	if fp3.Image != fp1.Image {
		t.Error("trajectory option changed the image scope")
	}
	if fp3.Options == fp1.Options {
		t.Error("trajectory option did not change the option set")
	}
	// A different class is a different image (different module build).
	mgW := Spec{Kernel: "mg", Class: "W"}
	tgt2, err := mgW.Build()
	if err != nil {
		t.Fatal(err)
	}
	fp4, err := mgW.Fingerprint(tgt2.Module)
	if err != nil {
		t.Fatal(err)
	}
	if fp4.Image == fp1.Image {
		t.Error("different kernels share an image scope")
	}
}

func TestStoreLifecycleAndRecovery(t *testing.T) {
	dir := t.TempDir()
	st, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	j, err := st.Create(Spec{Kernel: "ep"})
	if err != nil {
		t.Fatal(err)
	}
	if j.State != StateQueued || j.Name != "ep.W" || j.Image == "" {
		t.Fatalf("unexpected created job: %+v", j)
	}
	if err := st.Transition(j.ID, StateDone, ""); err == nil {
		t.Error("queued → done accepted")
	}
	if err := st.Transition(j.ID, StateRunning, ""); err != nil {
		t.Fatal(err)
	}
	// Journal generalization: any job's journal is fingerprint-validated.
	jr, resumed, err := st.OpenJournal(j.ID, j.Fingerprint())
	if err != nil {
		t.Fatal(err)
	}
	if resumed != 0 {
		t.Errorf("fresh journal claims %d resumed verdicts", resumed)
	}
	jr.Close()

	// A second store over the same dir recovers the running job to
	// queued (the server died), bumping its recovery count.
	st2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	got, ok := st2.Get(j.ID)
	if !ok {
		t.Fatal("job lost across restart")
	}
	if got.State != StateQueued || got.Recovered != 1 {
		t.Errorf("recovery: state %s recovered %d, want queued/1", got.State, got.Recovered)
	}
	if rec := st2.Recovered(); len(rec) != 1 || rec[0] != j.ID {
		t.Errorf("Recovered() = %v", rec)
	}
	// The journal resumes under the recorded fingerprint — and refuses a
	// diverged one, naming the field.
	jr2, _, err := st2.OpenJournal(j.ID, got.Fingerprint())
	if err != nil {
		t.Fatal(err)
	}
	jr2.Close()
	bad := got.Fingerprint()
	bad.Image = strings.Repeat("0", len(bad.Image))
	if _, _, err := st2.OpenJournal(j.ID, bad); err == nil || !strings.Contains(err.Error(), "image fingerprint diverged") {
		t.Errorf("image divergence not diagnosed: %v", err)
	}

	// IDs keep counting across restarts.
	j2, err := st2.Create(Spec{Kernel: "mg"})
	if err != nil {
		t.Fatal(err)
	}
	if j2.ID <= j.ID {
		t.Errorf("ID sequence went backwards: %s then %s", j.ID, j2.ID)
	}
	if l := st2.List(); len(l) != 2 || l[0].ID != j.ID || l[1].ID != j2.ID {
		t.Errorf("List() = %+v", l)
	}
}

func TestCachePersistenceAndScoping(t *testing.T) {
	path := filepath.Join(t.TempDir(), "verdicts.vc")
	c, err := OpenCache(path)
	if err != nil {
		t.Fatal(err)
	}
	a, b := c.Scope("scopeA"), c.Scope("scopeB")
	a.Store("k1", search.CachedVerdict{Pass: true})
	a.Store("k2", search.CachedVerdict{Pass: false})
	a.Store("k3", search.CachedVerdict{Pass: true, Proved: true})
	b.Store("k1", search.CachedVerdict{Pass: false})
	// Idempotent re-store must not duplicate.
	a.Store("k1", search.CachedVerdict{Pass: true})
	if v, ok := a.Lookup("k1"); !ok || !v.Pass {
		t.Errorf("scopeA k1 = %+v ok=%v", v, ok)
	}
	if v, ok := b.Lookup("k1"); !ok || v.Pass {
		t.Errorf("scopeB k1 = %+v ok=%v (scopes leak)", v, ok)
	}
	if _, ok := b.Lookup("k3"); ok {
		t.Error("scopeB sees scopeA's k3")
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}

	// Reopen: all four verdicts survive, with provenance.
	c2, err := OpenCache(path)
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	if c2.Len() != 4 {
		t.Errorf("reloaded %d entries, want 4", c2.Len())
	}
	if v, ok := c2.Scope("scopeA").Lookup("k3"); !ok || !v.Proved || !v.Pass {
		t.Errorf("proved verdict lost: %+v ok=%v", v, ok)
	}

	// A torn final append is skipped on load, not fatal.
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	f.WriteString("scopeA dead")
	f.Close()
	c3, err := OpenCache(path)
	if err != nil {
		t.Fatal(err)
	}
	defer c3.Close()
	if c3.Len() != 4 {
		t.Errorf("torn tail changed entry count: %d", c3.Len())
	}
}

func TestCacheConcurrent(t *testing.T) {
	path := filepath.Join(t.TempDir(), "conc.vc")
	c, err := OpenCache(path)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			sc := c.Scope("s")
			for i := 0; i < 100; i++ {
				key := string(rune('a' + i%26))
				sc.Store(key, search.CachedVerdict{Pass: true})
				sc.Lookup(key)
			}
		}(w)
	}
	wg.Wait()
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	c2, err := OpenCache(path)
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	if c2.Len() != 26 {
		t.Errorf("reloaded %d entries, want 26", c2.Len())
	}
}
