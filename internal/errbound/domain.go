package errbound

import "math"

// aval abstracts one 64-bit location with two coupled views.
//
// The float view says: if the bits are read as a float64, the value is
// NaN only if mayNaN, and otherwise lies in [lo, hi] and is an integer
// multiple of grid (grid 0 = no grid known). An empty interval
// (lo > hi) with mayNaN false means the location is never read as a
// float on any feasible path.
//
// The int view says: read as an int64, the value lies in [ilo, ihi]
// (iTop = unknown). Conversions between the views happen only at the
// bit-movement boundaries (MOVQ, LOAD/STORE of float cells) and only
// when one view pins the exact bit pattern (a singleton).
//
// sym is a degenerate affine form — a single shared noise symbol: two
// avals with the same nonzero sym hold the same concrete value (negated
// when symNeg differs). It is minted per load from a memory-cell
// generation, so it is only ever equal for loads with no intervening
// store; that is exactly the correlation the hl compiler's x-x,
// negation, and abs patterns need.
//
// acc marks additive accumulator provenance: the value was loaded from
// cell acc and has since only had addends folded in, their sum lying in
// [accLo, accHi]. Stores of such values are the accumulator writes the
// clamp inference in analyze.go keys on.
//
// src is the instruction index that produced the float value (-1 when
// unknown or joined from different producers); verdict reports chain it
// into the binding error path.
type aval struct {
	lo, hi float64
	grid   float64
	mayNaN bool

	sym    uint64
	symNeg bool

	acc          int32
	accLo, accHi float64
	accN         int32

	src int32

	ilo, ihi int64
	iTop     bool
}

// topF is the unconstrained float view.
func (v *aval) topF() {
	v.lo, v.hi = math.Inf(-1), math.Inf(1)
	v.grid = 0
	v.mayNaN = true
	v.sym, v.symNeg = 0, false
	v.acc = -1
	v.src = -1
}

// topI is the unconstrained int view.
func (v *aval) topI() {
	v.ilo, v.ihi = math.MinInt64, math.MaxInt64
	v.iTop = true
}

func top() aval {
	var v aval
	v.topF()
	v.topI()
	return v
}

// fromBits abstracts a location holding exactly the given 64 bits.
func fromBits(bits uint64, src int32) aval {
	var v aval
	v.ilo, v.ihi = int64(bits), int64(bits)
	v.iTop = false
	f := math.Float64frombits(bits)
	if math.IsNaN(f) {
		v.mayNaN = true
		v.lo, v.hi = math.Inf(1), math.Inf(-1) // empty: the value IS NaN
		v.grid = 0
	} else {
		v.lo, v.hi = f, f
		v.grid = gridOf(f)
	}
	v.acc = -1
	v.src = src
	return v
}

// fromF64 abstracts a float location holding exactly v (int view follows
// the bit pattern).
func fromF64(f float64, src int32) aval {
	return fromBits(math.Float64bits(f), src)
}

// fromIRange abstracts an integer location in [lo, hi]; the float view
// is pinned only for singletons (exact bits known).
func fromIRange(lo, hi int64, src int32) aval {
	if lo == hi {
		return fromBits(uint64(lo), src)
	}
	var v aval
	v.topF()
	v.ilo, v.ihi = lo, hi
	v.src = src
	return v
}

// singleton reports whether the float view pins one non-NaN value.
func (v *aval) singleton() (float64, bool) {
	if !v.mayNaN && v.lo == v.hi && !math.IsInf(v.lo, 0) {
		return v.lo, true
	}
	return 0, false
}

// isingleton reports whether the int view pins one value.
func (v *aval) isingleton() (int64, bool) {
	if !v.iTop && v.ilo == v.ihi {
		return v.ilo, true
	}
	return 0, false
}

// emptyF reports an empty float interval (value never read as float, or
// always NaN when mayNaN).
func (v *aval) emptyF() bool { return v.lo > v.hi }

// hasInf reports whether the float view admits an infinite value.
func (v *aval) hasInf() bool {
	return !v.emptyF() && (math.IsInf(v.lo, 0) || math.IsInf(v.hi, 0))
}

// maxAbs is the largest magnitude the float view admits (0 for empty).
func (v *aval) maxAbs() float64 {
	if v.emptyF() {
		return 0
	}
	return math.Max(math.Abs(v.lo), math.Abs(v.hi))
}

// exactlyRepresentable reports whether every value the float view admits
// round-trips through format f without changing a bit: no NaN, on a
// grid the format carries, and within the significand's reach on that
// grid. This is the core predicate every exactness verdict reduces to.
func (v *aval) exactlyRepresentable(f Format) bool {
	if v.mayNaN {
		return false
	}
	if v.emptyF() {
		return true // vacuous: never read as a float
	}
	if lone, ok := v.singleton(); ok {
		return f.Lossless(lone)
	}
	if v.grid <= 0 || v.grid < f.MinGrid {
		return false
	}
	m := v.maxAbs()
	return m <= v.grid*f.maxMult() && m <= f.MaxMag
}

// join merges b into v (least upper bound), reporting change.
func (v *aval) join(b *aval) bool {
	changed := false
	// Float interval hull; empty intervals are identities.
	if b.emptyF() {
		// nothing
	} else if v.emptyF() {
		if v.lo != b.lo || v.hi != b.hi {
			v.lo, v.hi = b.lo, b.hi
			changed = true
		}
	} else {
		if b.lo < v.lo {
			v.lo = b.lo
			changed = true
		}
		if b.hi > v.hi {
			v.hi = b.hi
			changed = true
		}
	}
	if b.mayNaN && !v.mayNaN {
		v.mayNaN = true
		changed = true
	}
	if g := math.Min(v.grid, b.grid); g != v.grid {
		v.grid = g
		changed = true
	}
	if v.sym != b.sym || v.symNeg != b.symNeg {
		if v.sym != 0 {
			v.sym, v.symNeg = 0, false
			changed = true
		}
	}
	if v.acc != b.acc {
		if v.acc != -1 {
			v.acc = -1
			changed = true
		}
	} else if v.acc >= 0 {
		if b.accLo < v.accLo {
			v.accLo = b.accLo
			changed = true
		}
		if b.accHi > v.accHi {
			v.accHi = b.accHi
			changed = true
		}
		if b.accN > v.accN {
			v.accN = b.accN
			changed = true
		}
	}
	if v.src != b.src && v.src != -1 {
		v.src = -1
		changed = true
	}
	// Int view.
	if b.iTop && !v.iTop {
		v.topI()
		changed = true
	} else if !v.iTop {
		if b.ilo < v.ilo {
			v.ilo = b.ilo
			changed = true
		}
		if b.ihi > v.ihi {
			v.ihi = b.ihi
			changed = true
		}
	}
	return changed
}

// Widening threshold ladders. Endpoints jump outward to the next rung,
// guaranteeing finite ascending chains once widening starts.
var fThresholds = []float64{0, 1, 2, 1024, 65536, 0x1p24, 0x1p31, 0x1p53, 1e100, math.Inf(1)}

var iThresholds = []int64{0, 1, 2, 1024, 65536, 1 << 24, 1 << 31, 1 << 53, math.MaxInt64}

func widenLoF(x float64) float64 {
	for i := len(fThresholds) - 1; i >= 0; i-- {
		if -fThresholds[i] <= x {
			return -fThresholds[i]
		}
	}
	return math.Inf(-1)
}

func widenHiF(x float64) float64 {
	for _, t := range fThresholds {
		if t >= x {
			return t
		}
	}
	return math.Inf(1)
}

func widenLoI(x int64) int64 {
	for i := len(iThresholds) - 1; i >= 0; i-- {
		if t := iThresholds[i]; t != math.MaxInt64 && -t <= x {
			return -t
		}
	}
	return math.MinInt64
}

func widenHiI(x int64) int64 {
	for _, t := range iThresholds {
		if t >= x {
			return t
		}
	}
	return math.MaxInt64
}

// widen accelerates v relative to its previous value at the same anchor:
// any endpoint that moved jumps to the next threshold, and a grid that
// shrank collapses to unknown (grids descend forever otherwise).
func (v *aval) widen(prev *aval) {
	if !v.emptyF() && !prev.emptyF() {
		if v.lo < prev.lo {
			v.lo = widenLoF(v.lo)
		}
		if v.hi > prev.hi {
			v.hi = widenHiF(v.hi)
		}
	}
	if v.grid < prev.grid {
		v.grid = 0
	}
	if !v.iTop && !prev.iTop {
		if v.ilo < prev.ilo {
			v.ilo = widenLoI(v.ilo)
		}
		if v.ihi > prev.ihi {
			v.ihi = widenHiI(v.ihi)
		}
	}
}

// nextDown/nextUp nudge an endpoint outward by one ulp — used where a
// library function is not trusted to be correctly rounded.
func nextDown(x float64) float64 { return math.Nextafter(x, math.Inf(-1)) }
func nextUp(x float64) float64   { return math.Nextafter(x, math.Inf(1)) }

// outward widens both endpoints by n ulps.
func outward(lo, hi float64, n int) (float64, float64) {
	for i := 0; i < n; i++ {
		lo, hi = nextDown(lo), nextUp(hi)
	}
	return lo, hi
}

// gridMul multiplies two grids, collapsing to unknown on over/underflow.
func gridMul(a, b float64) float64 {
	if a <= 0 || b <= 0 {
		return 0
	}
	g := a * b
	if g == 0 || math.IsInf(g, 0) {
		return 0
	}
	if g > hugeGrid {
		return hugeGrid
	}
	return g
}

// gridMin joins two grids (a value on both grids is on the coarser one).
func gridMin(a, b float64) float64 {
	if a <= 0 || b <= 0 {
		return 0
	}
	return math.Min(a, b)
}
