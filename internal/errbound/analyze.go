package errbound

import (
	"math"

	"fpmix/internal/dataflow"
	"fpmix/internal/isa"
	"fpmix/internal/prog"
)

// Options configure Analyze.
type Options struct {
	// Format is the lowered precision to prove against (default Single).
	Format Format
	// Budget bounds the number of abstract transfers per fixpoint pass;
	// exhausting it abandons all proofs (sound). Default 4M.
	Budget int
	// WidenDelay is the number of joins an anchor absorbs before
	// widening begins. Default 32.
	WidenDelay int
	// Ranges optionally seeds float range facts on data-slot
	// displacements (e.g. from a verifier's input specification).
	Ranges map[int32][2]float64
}

const (
	defaultBudget     = 4_000_000
	defaultWidenDelay = 32
	nGPR              = 16
	nRegLoc           = 48 // 16 GPRs + 16 XMM registers x 2 lanes
)

func gprLoc(r uint8) int           { return int(r) }
func xmmLoc(x uint8, lane int) int { return nGPR + 2*int(x) + lane }

// state is the abstract machine state at one program point: one aval per
// register location and memory cell, plus the per-GPR record of which
// slot cell the register was last loaded from (so branch refinement of
// the register also narrows the slot — the mechanism that makes counted
// loops converge without widening).
type state struct {
	vals  []aval
	alias [nGPR]int32
}

func (s *state) clone() *state {
	c := &state{vals: make([]aval, len(s.vals))}
	copy(c.vals, s.vals)
	c.alias = s.alias
	return c
}

func (s *state) joinFrom(o *state) bool {
	changed := false
	for i := range s.vals {
		if s.vals[i].join(&o.vals[i]) {
			changed = true
		}
	}
	for r := range s.alias {
		if s.alias[r] != o.alias[r] && s.alias[r] != -1 {
			s.alias[r] = -1
			changed = true
		}
	}
	return changed
}

// cmpFact remembers the most recent CMPR/CMPI on the current straight
// line, for conditional-branch refinement. It never crosses an anchor.
type cmpFact struct {
	valid bool
	aReg  uint8
	bReg  uint8
	imm   int64
	isImm bool
}

// clampInfo is a proven accumulator clamp on a memory cell's float view.
type clampInfo struct{ lo, hi float64 }

// siteRec accumulates the post-fixpoint operand and result avals seen at
// one candidate instruction.
type siteRec struct {
	a, b, r aval
	seen    bool
}

// storeRec accumulates the raw (pre-clamp) stored aval and target cells
// of one store instruction.
type storeRec struct {
	cells []int
	val   aval
	seen  bool
}

type analyzer struct {
	g     *dataflow.Graph
	mod   *prog.Module
	cells []dataflow.MemCell
	f     Format
	opts  Options

	nloc     int
	anchor   []bool
	entryIdx int
	summary  int // cell id of the everything blob, -1 if absent
	stack    int // cell id of the PUSH/POP stack, -1 if absent

	in     map[int]*state
	joins  map[int]int
	queue  []int
	queued map[int]bool
	budget int

	gen     uint64
	cellGen []uint64

	cellInit []aval
	execB    []float64 // per-instr static execution bound; 0 = unknown
	clamps   map[int]clampInfo

	sawWild     bool // store that may hit arbitrary memory
	sawMPIWrite bool // syscall that rewrites memory

	recording bool
	sites     map[int]*siteRec
	stores    map[int]*storeRec

	transfers int
	converged bool
}

// Analysis is the result of Analyze: a per-candidate-site verdict table.
type Analysis struct {
	// Format the proofs target.
	Format Format
	// Sites maps every candidate instruction address to its bound.
	Sites map[uint64]SiteBound
	// Converged is false when the analysis ran out of budget; all
	// verdicts are then "not exact" (sound).
	Converged bool
	// Clamped counts memory cells with a proven accumulator clamp.
	Clamped int
	// Transfers is the total abstract-transfer work performed.
	Transfers int
}

// Analyze runs the sound error-bound analysis on the all-double module m
// and returns per-candidate-site exactness verdicts.
func Analyze(m *prog.Module, opts Options) (*Analysis, error) {
	g, err := dataflow.BuildGraph(m)
	if err != nil {
		return nil, err
	}
	if opts.Format.MantBits == 0 {
		opts.Format = Single
	}
	if opts.Budget <= 0 {
		opts.Budget = defaultBudget
	}
	if opts.WidenDelay <= 0 {
		opts.WidenDelay = defaultWidenDelay
	}
	az := &analyzer{g: g, mod: m, f: opts.Format, opts: opts}
	az.prepare()

	ok := az.pass()
	if ok {
		az.collect()
		az.inferClamps()
		for iter := 0; ok && len(az.clamps) > 0; iter++ {
			ok = az.pass()
			if !ok {
				break
			}
			az.collect()
			dropped := az.verifyClamps()
			if len(dropped) == 0 {
				break // every clamp verified; records are final
			}
			if iter >= 4 {
				az.clamps = map[int]clampInfo{}
			} else {
				for _, c := range dropped {
					delete(az.clamps, c)
				}
			}
			if len(az.clamps) == 0 {
				// Re-derive the records without any clamp in force.
				ok = az.pass()
				if ok {
					az.collect()
				}
				break
			}
		}
	}
	az.converged = ok
	return az.buildAnalysis(), nil
}

func (az *analyzer) prepare() {
	az.cells = az.g.Cells()
	az.nloc = nRegLoc + len(az.cells)
	az.summary = -1
	az.stack = -1
	for c, mc := range az.cells {
		switch mc.Kind {
		case dataflow.CellSummary:
			az.summary = c
		case dataflow.CellStack:
			az.stack = c
		}
	}

	n := az.g.Len()
	az.anchor = make([]bool, n)
	ei, _ := az.g.Entry()
	az.entryIdx = ei
	for i := 0; i < n; i++ {
		preds := az.g.Preds(i)
		if len(preds) != 1 || i == ei {
			az.anchor[i] = true
			continue
		}
		if len(az.g.Succs(int(preds[0]))) > 1 {
			az.anchor[i] = true
		}
	}

	az.cellInit = make([]aval, len(az.cells))
	for c, mc := range az.cells {
		switch mc.Kind {
		case dataflow.CellSlot:
			az.cellInit[c] = fromBits(az.dataBits(mc.Off), -1)
			if r, ok := az.opts.Ranges[mc.Off]; ok {
				v := az.cellInit[c]
				v.lo, v.hi = r[0], r[1]
				v.grid = 0
				v.mayNaN = false
				v.topI()
				az.cellInit[c] = v
			}
		case dataflow.CellExtent:
			v := fromBits(az.dataBits(mc.Off), -1)
			for off := mc.Off + 8; off+8 <= mc.Off+mc.Size; off += 8 {
				w := fromBits(az.dataBits(off), -1)
				v.join(&w)
			}
			az.cellInit[c] = v
		default:
			az.cellInit[c] = top()
		}
	}

	az.execB = computeExecBounds(az.mod, az.g)
	az.clamps = map[int]clampInfo{}
}

// dataBits reads the 8 bytes at data-segment offset off (zero beyond the
// initialized image, like the VM's zeroed memory).
func (az *analyzer) dataBits(off int32) uint64 {
	var bits uint64
	for k := 0; k < 8; k++ {
		idx := int64(off) + int64(k)
		var b byte
		if idx >= 0 && idx < int64(len(az.mod.Data)) {
			b = az.mod.Data[idx]
		}
		bits |= uint64(b) << (8 * k)
	}
	return bits
}

func (az *analyzer) initialState() *state {
	st := &state{vals: make([]aval, az.nloc)}
	for i := range st.vals {
		st.vals[i] = top()
	}
	for r := range st.alias {
		st.alias[r] = -1
	}
	sp := az.mod.MemSize &^ 15
	st.vals[gprLoc(isa.RSP)] = fromBits(sp, -1)
	for c := range az.cells {
		st.vals[nRegLoc+c] = az.cellInit[c]
	}
	return st
}

// pass runs one fixpoint iteration to convergence (or budget
// exhaustion), honoring the current clamp set.
func (az *analyzer) pass() bool {
	az.in = map[int]*state{}
	az.joins = map[int]int{}
	az.queue = az.queue[:0]
	az.queued = map[int]bool{}
	az.budget = az.opts.Budget
	az.gen = uint64(len(az.cells)) + 1
	az.cellGen = make([]uint64, len(az.cells))
	for c := range az.cellGen {
		az.cellGen[c] = uint64(c) + 1
	}

	az.in[az.entryIdx] = az.initialState()
	az.enqueue(az.entryIdx)
	for len(az.queue) > 0 {
		i := az.queue[len(az.queue)-1]
		az.queue = az.queue[:len(az.queue)-1]
		az.queued[i] = false
		az.walk(i, az.in[i].clone())
		if az.budget < 0 {
			return false
		}
	}
	return true
}

// collect re-walks every converged anchor chain once, recording
// candidate-site avals and store records at the fixpoint.
func (az *analyzer) collect() {
	az.sites = map[int]*siteRec{}
	az.stores = map[int]*storeRec{}
	az.recording = true
	az.budget = az.g.Len() + az.opts.Budget
	for i, st := range az.in {
		az.walk(i, st.clone())
	}
	az.recording = false
}

func (az *analyzer) enqueue(i int) {
	if !az.queued[i] {
		az.queued[i] = true
		az.queue = append(az.queue, i)
	}
}

// walk executes the straight-line chain beginning at anchor i, joining
// the resulting states into successor anchors.
func (az *analyzer) walk(i int, st *state) {
	var cmp cmpFact
	for {
		az.budget--
		az.transfers++
		if az.budget < 0 {
			return
		}
		in := az.g.Instr(i)
		az.transfer(i, &in, st, &cmp)
		succs := az.g.Succs(i)
		if len(succs) == 0 {
			return
		}
		if len(succs) == 1 && !az.anchor[succs[0]] {
			i = int(succs[0])
			continue
		}
		if in.Op.IsCondBranch() && len(succs) == 2 && cmp.valid {
			takenIdx := -1
			if ti, ok := az.g.Index(uint64(in.A.Imm)); ok {
				takenIdx = ti
			}
			for _, s := range succs {
				es := st.clone()
				if takenIdx >= 0 {
					refineCmp(es, &cmp, in.Op, int(s) == takenIdx)
				}
				az.joinAnchor(int(s), es)
			}
			return
		}
		for _, s := range succs {
			az.joinAnchor(int(s), st)
		}
		return
	}
}

func (az *analyzer) joinAnchor(a int, s *state) {
	if az.recording {
		return
	}
	cur := az.in[a]
	if cur == nil {
		az.in[a] = s.clone()
		az.enqueue(a)
		return
	}
	az.joins[a]++
	var prev *state
	if az.joins[a] >= az.opts.WidenDelay {
		prev = cur.clone()
	}
	if cur.joinFrom(s) {
		if prev != nil {
			for k := range cur.vals {
				cur.vals[k].widen(&prev.vals[k])
			}
		}
		az.enqueue(a)
	}
}

// refineCmp narrows integer views on the edge out of a conditional
// branch whose flags came from the recorded CMPR/CMPI. Only the signed
// relation family is refined; the unsigned family (used for FP
// comparisons through UCOMISD) is left alone.
func refineCmp(st *state, c *cmpFact, op isa.Op, taken bool) {
	type rel int
	const (
		relNone rel = iota
		relEq
		relNe
		relLt
		relLe
		relGt
		relGe
	)
	var r rel
	switch op {
	case isa.JE:
		r = relEq
	case isa.JNE:
		r = relNe
	case isa.JL:
		r = relLt
	case isa.JLE:
		r = relLe
	case isa.JG:
		r = relGt
	case isa.JGE:
		r = relGe
	default:
		return
	}
	if !taken {
		switch r {
		case relEq:
			r = relNe
		case relNe:
			r = relEq
		case relLt:
			r = relGe
		case relLe:
			r = relGt
		case relGt:
			r = relLe
		case relGe:
			r = relLt
		}
	}

	bounds := func(v *aval) (int64, int64) {
		if v.iTop {
			return math.MinInt64, math.MaxInt64
		}
		return v.ilo, v.ihi
	}
	alo, ahi := bounds(&st.vals[gprLoc(c.aReg)])
	var blo, bhi int64
	if c.isImm {
		blo, bhi = c.imm, c.imm
	} else {
		blo, bhi = bounds(&st.vals[gprLoc(c.bReg)])
	}

	applyTo := func(reg uint8, lo, hi int64) {
		narrow(&st.vals[gprLoc(reg)], lo, hi)
		if cell := st.alias[reg]; cell >= 0 {
			narrow(&st.vals[nRegLoc+int(cell)], lo, hi)
		}
	}

	switch r {
	case relEq:
		applyTo(c.aReg, blo, bhi)
		if !c.isImm {
			applyTo(c.bReg, alo, ahi)
		}
	case relNe:
		if blo == bhi {
			lo, hi := alo, ahi
			if lo == blo && lo < math.MaxInt64 {
				lo++
			}
			if hi == blo && hi > math.MinInt64 {
				hi--
			}
			applyTo(c.aReg, lo, hi)
		}
	case relLt:
		applyTo(c.aReg, math.MinInt64, dec(bhi))
		if !c.isImm {
			applyTo(c.bReg, inc(alo), math.MaxInt64)
		}
	case relLe:
		applyTo(c.aReg, math.MinInt64, bhi)
		if !c.isImm {
			applyTo(c.bReg, alo, math.MaxInt64)
		}
	case relGt:
		applyTo(c.aReg, inc(blo), math.MaxInt64)
		if !c.isImm {
			applyTo(c.bReg, math.MinInt64, dec(ahi))
		}
	case relGe:
		applyTo(c.aReg, blo, math.MaxInt64)
		if !c.isImm {
			applyTo(c.bReg, math.MinInt64, ahi)
		}
	}
}

func inc(x int64) int64 {
	if x == math.MaxInt64 {
		return x
	}
	return x + 1
}

func dec(x int64) int64 {
	if x == math.MinInt64 {
		return x
	}
	return x - 1
}

// narrow intersects an int view with [lo, hi]. An empty intersection
// marks an infeasible edge; the view is left untouched (sound).
func narrow(v *aval, lo, hi int64) {
	nlo, nhi := lo, hi
	if !v.iTop {
		if v.ilo > nlo {
			nlo = v.ilo
		}
		if v.ihi < nhi {
			nhi = v.ihi
		}
	}
	if nlo > nhi {
		return
	}
	v.iTop = false
	v.ilo, v.ihi = nlo, nhi
}
