// Package errbound is a sound forward error analysis over the
// instruction-level supergraph of internal/dataflow.
//
// The analysis abstracts every floating-point location by an interval
// refined with a dyadic grid — the largest power of two g such that the
// value is provably an integer multiple of g — plus a may-NaN flag and a
// degenerate affine form (a single shared noise symbol) for correlated
// terms. From these facts it derives, per candidate instruction, an
// *exactness* verdict: whether lowering that site to the target format
// provably changes no bit of any value the program computes. A piece
// whose every executed candidate is exact therefore passes any verifier
// the all-double baseline passes, so the search can skip its evaluation
// run entirely (provenance "proved") without perturbing the rest of the
// search trajectory.
//
// Soundness argument, in brief: interval endpoints are propagated with
// the same float64 arithmetic the VM executes, which is sound because
// round-to-nearest is monotone, and exactly for singletons, which is
// sound because analysis and VM share one arithmetic; a value on grid g
// with magnitude at most g·2^(p-1) fits a p-bit significand exactly, so
// both the double op and its single twin compute the identical value and
// the downcast at the replacement boundary is lossless. Loop heads widen
// to a fixed threshold ladder after a delay; statically counted loops
// (cfg.Loop.Trip) additionally justify accumulator clamps by an
// execution-count argument (see analyze.go). Anything the analysis
// cannot prove it reports as not exact — never the other way around.
package errbound

import "math"

// Format describes a target floating-point format — the precision a
// candidate site would be lowered to. Single is the only format the
// replacement machinery emits today; the table is the hook for the
// precision-lattice roadmap item (half, bfloat16, customized mantissas).
type Format struct {
	// Name identifies the format in reports.
	Name string
	// MantBits is the significand width in bits, including the implicit
	// leading bit (24 for IEEE single).
	MantBits uint
	// MinGrid is the smallest dyadic grid on which every multiple with
	// at most MantBits significant bits is exactly representable
	// (2^-126 for single: such multiples stay inside the normal +
	// exactly-representable subnormal range).
	MinGrid float64
	// MaxMag is the largest magnitude the exactness proof admits;
	// chosen a power of two comfortably inside the format's range.
	MaxMag float64
}

// Predefined formats. Single is the default target.
var (
	Single   = Format{Name: "single", MantBits: 24, MinGrid: 0x1p-126, MaxMag: 0x1p127}
	Double   = Format{Name: "double", MantBits: 53, MinGrid: 0x1p-1022, MaxMag: 0x1p1023}
	Half     = Format{Name: "half", MantBits: 11, MinGrid: 0x1p-24, MaxMag: 0x1p15}
	BFloat16 = Format{Name: "bfloat16", MantBits: 8, MinGrid: 0x1p-126, MaxMag: 0x1p127}
)

// Eps is the unit roundoff of the format (half an ulp at 1.0) — the
// per-operation relative error bound rewriting scorers use.
func (f Format) Eps() float64 { return math.Ldexp(1, -int(f.MantBits)) }

// maxMult is the largest multiplier of the grid that still fits the
// significand: values on grid g with |v| <= g·maxMult are exact.
func (f Format) maxMult() float64 { return math.Ldexp(1, int(f.MantBits)) }

// Lossless reports whether v survives a round trip through the format
// unchanged (NaN does not count: its payload is not preserved by the
// replacement encoding).
func (f Format) Lossless(v float64) bool {
	if math.IsNaN(v) {
		return false
	}
	if f.MantBits >= 53 {
		return true
	}
	if f == Single || (f.MantBits == 24 && f.MinGrid == Single.MinGrid) {
		return float64(float32(v)) == v
	}
	// Generic check: v must sit on a representable grid of the format.
	if v == 0 {
		return true
	}
	if math.Abs(v) > f.MaxMag {
		return false
	}
	g := gridOf(v)
	return g >= f.MinGrid && math.Abs(v) <= g*f.maxMult()
}

// gridOf returns the largest power of two that exactly divides v, or 0
// for NaN/Inf. Zero divides everything; it reports a huge grid.
func gridOf(v float64) float64 {
	if v == 0 {
		return hugeGrid
	}
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return 0
	}
	bits := math.Float64bits(v)
	exp := int(bits>>52) & 0x7FF
	frac := bits & (1<<52 - 1)
	if exp == 0 {
		// Subnormal: value = frac · 2^-1074.
		return math.Ldexp(1, -1074+trailingZeros52(frac))
	}
	sig := frac | 1<<52
	return math.Ldexp(1, exp-1075+trailingZeros52(sig))
}

func trailingZeros52(x uint64) int {
	n := 0
	for x&1 == 0 {
		x >>= 1
		n++
	}
	return n
}

// hugeGrid is the grid reported for an exact zero: zero is a multiple of
// every power of two, and a finite sentinel keeps grid arithmetic total.
const hugeGrid = 0x1p200
