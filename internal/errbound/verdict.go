package errbound

import (
	"fmt"
	"math"
	"sort"

	"fpmix/internal/isa"
)

// SiteBound is the proved fact about one candidate instruction.
type SiteBound struct {
	// Addr and Op identify the instruction.
	Addr uint64
	Op   isa.Op
	// Lo, Hi, Grid, MayNaN describe the proved result-value facts (Grid
	// 0 = no grid known; Lo > Hi = never produces a float value).
	Lo, Hi float64
	Grid   float64
	MayNaN bool
	// Exact reports that lowering this site to the target format
	// provably changes no bit of anything the program computes.
	Exact bool
	// Unreached marks sites the analysis proved never execute (trivially
	// exact).
	Unreached bool
	// Reason explains a non-exact verdict ("" when Exact).
	Reason string
	// Culprit is the address of the instruction that produced the value
	// binding the failed proof, or 0; Analysis.Path chains it.
	Culprit uint64
}

// ExactAt reports whether the candidate at addr was proved exact.
func (a *Analysis) ExactAt(addr uint64) bool {
	sb, ok := a.Sites[addr]
	return ok && sb.Exact
}

// PieceExact reports whether every candidate address of a piece was
// proved exact (false for an empty piece: nothing to prove).
func (a *Analysis) PieceExact(addrs []uint64) bool {
	if len(addrs) == 0 {
		return false
	}
	for _, ad := range addrs {
		if !a.ExactAt(ad) {
			return false
		}
	}
	return true
}

// Path follows the binding-culprit chain from addr, returning the
// addresses along the error path (addr first, at most max entries).
func (a *Analysis) Path(addr uint64, max int) []uint64 {
	var out []uint64
	seen := map[uint64]bool{}
	for addr != 0 && !seen[addr] && len(out) < max {
		out = append(out, addr)
		seen[addr] = true
		sb, ok := a.Sites[addr]
		if !ok {
			break
		}
		addr = sb.Culprit
	}
	return out
}

// SortedAddrs returns the candidate addresses in ascending order.
func (a *Analysis) SortedAddrs() []uint64 {
	out := make([]uint64, 0, len(a.Sites))
	for ad := range a.Sites {
		out = append(out, ad)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Exact counts proved-exact sites (including unreached ones).
func (a *Analysis) Exact() int {
	n := 0
	for _, sb := range a.Sites {
		if sb.Exact {
			n++
		}
	}
	return n
}

func (az *analyzer) buildAnalysis() *Analysis {
	res := &Analysis{
		Format:    az.f,
		Sites:     map[uint64]SiteBound{},
		Converged: az.converged,
		Clamped:   len(az.clamps),
		Transfers: az.transfers,
	}
	for i := 0; i < az.g.Len(); i++ {
		in := az.g.Instr(i)
		if !isa.IsCandidate(in.Op) {
			continue
		}
		sb := SiteBound{Addr: in.Addr, Op: in.Op, Lo: math.Inf(1), Hi: math.Inf(-1)}
		var rec *siteRec
		if az.sites != nil {
			rec = az.sites[i]
		}
		switch {
		case !az.converged:
			sb.Reason = "analysis did not converge within budget"
		case rec == nil || !rec.seen:
			sb.Unreached, sb.Exact = true, true
		default:
			az.judge(&sb, rec)
		}
		res.Sites[in.Addr] = sb
	}
	return res
}

// judge derives the exactness verdict for one recorded site. The single
// uniform criterion: every value the lowered data path touches at this
// site must be exactly representable in the target format. If the
// double result is single-representable, the single twin computes the
// identical value (a correctly rounded result that lands on a single is
// also the nearest single), so the downcast at the replacement boundary
// is lossless and the whole machine stays bit-identical by induction.
func (az *analyzer) judge(sb *SiteBound, rec *siteRec) {
	sb.Lo, sb.Hi = rec.r.lo, rec.r.hi
	sb.Grid = rec.r.grid
	if sb.Grid == hugeGrid {
		sb.Grid = 0
	}
	sb.MayNaN = rec.r.mayNaN

	type part struct {
		name string
		v    *aval
	}
	var parts []part
	switch sb.Op {
	case isa.ADDSD, isa.SUBSD, isa.MULSD, isa.DIVSD:
		parts = []part{{"operand a", &rec.a}, {"operand b", &rec.b}, {"result", &rec.r}}
	case isa.MINSD, isa.MAXSD:
		parts = []part{{"operand a", &rec.a}, {"operand b", &rec.b}}
	case isa.SQRTSD, isa.SINSD, isa.COSSD, isa.EXPSD, isa.LOGSD:
		parts = []part{{"operand", &rec.b}, {"result", &rec.r}}
	case isa.UCOMISD:
		parts = []part{{"operand a", &rec.a}, {"operand b", &rec.b}}
	case isa.CVTSI2SD:
		parts = []part{{"result", &rec.r}}
	case isa.CVTTSD2SI:
		parts = []part{{"operand", &rec.b}}
	default:
		sb.Reason = "packed operation: lane values not tracked"
		return
	}
	for _, p := range parts {
		if why := explain(p.v, az.f); why != "" {
			sb.Reason = p.name + " " + why
			if p.v.src >= 0 && int(p.v.src) < az.g.Len() {
				ca := az.g.Instr(int(p.v.src)).Addr
				if ca != sb.Addr {
					sb.Culprit = ca
				}
			}
			return
		}
	}
	sb.Exact = true
}

// explain says why v is not exactly representable in f ("" if it is).
func explain(v *aval, f Format) string {
	if v.exactlyRepresentable(f) {
		return ""
	}
	switch {
	case v.mayNaN:
		return "may be NaN"
	case v.lo == v.hi:
		return fmt.Sprintf("value %g has more than %d significant bits", v.lo, f.MantBits)
	case v.hasInf():
		return "may be infinite"
	case v.grid <= 0:
		return fmt.Sprintf("no dyadic grid proved for range [%g, %g]", v.lo, v.hi)
	case v.grid < f.MinGrid:
		return fmt.Sprintf("grid %g finer than the format carries", v.grid)
	case v.maxAbs() > f.MaxMag:
		return fmt.Sprintf("magnitude up to %g exceeds the format range", v.maxAbs())
	default:
		return fmt.Sprintf("magnitude up to %g exceeds the %d-bit reach of grid %g",
			v.maxAbs(), f.MantBits, v.grid)
	}
}
