package errbound

import (
	"math"
	"testing"
)

func TestGridOf(t *testing.T) {
	cases := []struct {
		v, grid float64
	}{
		{0, hugeGrid},
		{1, 1},
		{145, 1},
		{0.5, 0.5},
		{0.75, 0.25},
		{3, 1},
		{1024, 1024},
		{0x1p-1074, 0x1p-1074},
	}
	for _, c := range cases {
		if g := gridOf(c.v); g != c.grid {
			t.Errorf("gridOf(%g) = %g, want %g", c.v, g, c.grid)
		}
	}
}

func TestExactlyRepresentable(t *testing.T) {
	ok := []aval{
		fromF64(1.5, -1),
		fromF64(1<<20, -1),
		{lo: 0, hi: 1024, grid: 1},
		{lo: -8, hi: 8, grid: 0.25},
	}
	for i := range ok {
		if !ok[i].exactlyRepresentable(Single) {
			t.Errorf("case %d: want representable", i)
		}
	}
	bad := []aval{
		fromF64(0.1, -1),                      // needs 53 significand bits
		fromF64(1<<25+1, -1),                  // 26 significand bits
		{lo: 0, hi: 1 << 26, grid: 1},         // range exceeds the 24-bit reach
		{lo: 0, hi: 1, grid: 1, mayNaN: true}, // NaN escapes any grid
		{lo: 0, hi: math.Inf(1), grid: 1},     // infinity
		{lo: 0, hi: 1, grid: 0x1p-200},        // grid below single subnormals
		{lo: 0, hi: 0x1p130, grid: 0x1p120},   // magnitude exceeds the single range
	}
	for i := range bad {
		if bad[i].exactlyRepresentable(Single) {
			t.Errorf("bad case %d: want not representable", i)
		}
	}
}

func TestLossless(t *testing.T) {
	for _, v := range []float64{0, 1, -1.5, 145, 0x1p127, -0x1p-126, 3.25} {
		if !Single.Lossless(v) {
			t.Errorf("Lossless(%g) = false", v)
		}
	}
	for _, v := range []float64{0.1, 1e300, 0x1p-1074, 1<<25 + 1} {
		if Single.Lossless(v) {
			t.Errorf("Lossless(%g) = true", v)
		}
	}
}

// TestPath follows the culprit chain without cycling.
func TestPath(t *testing.T) {
	a := &Analysis{Sites: map[uint64]SiteBound{
		10: {Addr: 10, Culprit: 20},
		20: {Addr: 20, Culprit: 10}, // cycle back
	}}
	p := a.Path(10, 8)
	if len(p) != 2 || p[0] != 10 || p[1] != 20 {
		t.Errorf("path = %v", p)
	}
}

func TestPieceExact(t *testing.T) {
	a := &Analysis{Sites: map[uint64]SiteBound{
		1: {Exact: true},
		2: {Exact: false},
	}}
	if a.PieceExact(nil) {
		t.Error("empty piece must not be exact")
	}
	if !a.PieceExact([]uint64{1}) {
		t.Error("proved piece rejected")
	}
	if a.PieceExact([]uint64{1, 2}) {
		t.Error("mixed piece accepted")
	}
	if a.PieceExact([]uint64{1, 3}) {
		t.Error("unknown address accepted")
	}
}
