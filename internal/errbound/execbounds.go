package errbound

import (
	"fpmix/internal/cfg"
	"fpmix/internal/dataflow"
	"fpmix/internal/isa"
	"fpmix/internal/prog"
)

// execBCap bounds usable execution counts; anything larger is treated as
// unknown (the clamp pad would lose all precision anyway).
const execBCap = 1e15

// fnSummary is a syntactic per-function summary for trip-count validity.
type fnSummary struct {
	slots  map[int32]bool // displacements of direct stable-base stores
	wild   bool           // a store that may hit arbitrary memory
	memSys bool           // a syscall that rewrites memory (or unknown)
	calls  []int          // callee function indices
}

func classifyStore(s *fnSummary, m isa.MemRef, sb uint8, haveSB bool, size int) {
	if !haveSB || m.Base != sb {
		s.wild = true
		return
	}
	if m.HasIndex {
		return // extent store: disjoint from slots in the validated model
	}
	s.slots[m.Disp] = true
	if size == 16 {
		s.slots[m.Disp+8] = true
	}
}

// computeExecBounds derives, per supergraph instruction, a static upper
// bound on how many times it can execute: the product of the trip counts
// of its enclosing counted loops times a call-graph bound on its
// function's activation count. 0 means unknown.
func computeExecBounds(m *prog.Module, g *dataflow.Graph) []float64 {
	out := make([]float64, g.Len())
	fg, err := cfg.Build(m)
	if err != nil {
		return out
	}
	sb, haveSB := g.StableBase()

	nf := len(m.Funcs)
	fidx := make(map[uint64]int, nf)
	for fi, f := range m.Funcs {
		fidx[f.Addr] = fi
	}
	sums := make([]fnSummary, nf)
	for fi, f := range m.Funcs {
		s := &sums[fi]
		s.slots = map[int32]bool{}
		for _, in := range f.Instrs {
			switch in.Op {
			case isa.STORE:
				classifyStore(s, in.A.Mem, sb, haveSB, 8)
			case isa.MOVSD, isa.MOVSS:
				if in.A.Kind == isa.KindMem {
					classifyStore(s, in.A.Mem, sb, haveSB, 8)
				}
			case isa.MOVAPD:
				if in.A.Kind == isa.KindMem {
					classifyStore(s, in.A.Mem, sb, haveSB, 16)
				}
			case isa.PUSH, isa.PUSHX:
				// Stack writes are disjoint from data slots in the model.
			case isa.SYSCALL:
				switch in.A.Imm {
				case isa.SysOutF64, isa.SysOutF32, isa.SysOutI64,
					isa.SysMPIRank, isa.SysMPISize, isa.SysMPIBarrier, isa.SysMPISendF64:
					// read-only host services
				default:
					s.memSys = true
				}
			case isa.CALL:
				if ci, ok := fidx[uint64(in.A.Imm)]; ok {
					s.calls = append(s.calls, ci)
				} else {
					s.memSys = true // unresolvable call: assume the worst
				}
			}
		}
	}

	// calleeClosure expands a set of direct callees transitively.
	calleeClosure := func(start []int) []int {
		seen := map[int]bool{}
		stack := append([]int(nil), start...)
		var out []int
		for len(stack) > 0 {
			fi := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			if seen[fi] {
				continue
			}
			seen[fi] = true
			out = append(out, fi)
			stack = append(stack, sums[fi].calls...)
		}
		return out
	}

	// Per-instruction loop trip products. A zero poisons (unknown).
	prod := map[uint64]float64{}
	for fi, fgf := range fg.Funcs {
		if fi >= nf {
			break
		}
		for _, l := range fgf.Loops() {
			factor := float64(l.Trip)
			if l.Trip > 0 && !loopTripValid(fgf, &l, sb, haveSB, fidx, sums, calleeClosure) {
				factor = 0
			}
			for _, ba := range l.Blocks {
				b := fgf.BlockAt(ba)
				if b == nil {
					continue
				}
				for _, in := range b.Instrs {
					p, ok := prod[in.Addr]
					if !ok {
						p = 1
					}
					prod[in.Addr] = p * factor
				}
			}
		}
	}

	// Call-graph activation bounds. bounds[f] is an upper bound on how
	// many times f can be entered; cycles and unknown call sites yield 0.
	entryFunc := -1
	for fi, f := range m.Funcs {
		if m.Entry >= f.Addr && m.Entry < f.End {
			entryFunc = fi
		}
	}
	type callSite struct {
		caller int
		addr   uint64
	}
	sites := map[int][]callSite{}
	for fi, f := range m.Funcs {
		for _, in := range f.Instrs {
			if in.Op == isa.CALL {
				if ci, ok := fidx[uint64(in.A.Imm)]; ok {
					sites[ci] = append(sites[ci], callSite{fi, in.Addr})
				}
			}
		}
	}
	bounds := make([]float64, nf)
	color := make([]int, nf) // 0 new, 1 visiting, 2 done
	var fb func(fi int) float64
	fb = func(fi int) float64 {
		switch color[fi] {
		case 1:
			return 0 // recursion: unbounded
		case 2:
			return bounds[fi]
		}
		color[fi] = 1
		total := 0.0
		if fi == entryFunc {
			total = 1
		}
		for _, s := range sites[fi] {
			cb := fb(s.caller)
			lp, ok := prod[s.addr]
			if !ok {
				lp = 1
			}
			if cb == 0 || lp == 0 {
				total = 0
				break
			}
			total += cb * lp
		}
		if total > execBCap {
			total = 0
		}
		color[fi] = 2
		bounds[fi] = total
		return total
	}

	for i := 0; i < g.Len(); i++ {
		in := g.Instr(i)
		fi := g.FuncOf(i)
		if fi < 0 || fi >= nf {
			continue
		}
		b := fb(fi)
		p, ok := prod[in.Addr]
		if !ok {
			p = 1
		}
		e := b * p
		if b == 0 || p == 0 || e > execBCap {
			e = 0
		}
		out[i] = e
	}
	return out
}

// loopTripValid checks the non-local side conditions of a detected trip
// count: nothing reachable from inside the loop may write the counter
// slot behind the shape-checked increment's back, hit arbitrary memory,
// or invoke a memory-writing host service. (The in-loop direct stores to
// the counter slot itself were already shape-checked by detectTrip.)
func loopTripValid(fgf *cfg.FuncGraph, l *cfg.Loop, sb uint8, haveSB bool,
	fidx map[uint64]int, sums []fnSummary, closure func([]int) []int) bool {
	var callees []int
	wildStore := func(m isa.MemRef) bool { return !haveSB || m.Base != sb }
	for _, ba := range l.Blocks {
		b := fgf.BlockAt(ba)
		if b == nil {
			return false
		}
		for _, in := range b.Instrs {
			switch in.Op {
			case isa.STORE:
				if wildStore(in.A.Mem) {
					return false
				}
			case isa.MOVSD, isa.MOVSS, isa.MOVAPD:
				if in.A.Kind == isa.KindMem && wildStore(in.A.Mem) {
					return false
				}
			case isa.SYSCALL:
				switch in.A.Imm {
				case isa.SysOutF64, isa.SysOutF32, isa.SysOutI64,
					isa.SysMPIRank, isa.SysMPISize, isa.SysMPIBarrier, isa.SysMPISendF64:
				default:
					return false
				}
			case isa.CALL:
				ci, ok := fidx[uint64(in.A.Imm)]
				if !ok {
					return false
				}
				callees = append(callees, ci)
			}
		}
	}
	for _, fi := range closure(callees) {
		s := &sums[fi]
		if s.wild || s.memSys || s.slots[l.CounterDisp] {
			return false
		}
	}
	return true
}
