package errbound_test

import (
	"math"
	"testing"

	"fpmix/internal/config"
	"fpmix/internal/errbound"
	"fpmix/internal/hl"
	"fpmix/internal/isa"
	"fpmix/internal/kernels"
	"fpmix/internal/mpi"
	"fpmix/internal/prog"
	"fpmix/internal/replace"
	"fpmix/internal/verify"
	"fpmix/internal/vm"
)

// TestAnalyzeStraightLine proves a tiny exact program end to end.
func TestAnalyzeStraightLine(t *testing.T) {
	p := hl.New("straight", hl.ModeF64)
	x := p.ScalarInit("x", 2.0)
	y := p.ScalarInit("y", 3.0)
	main := p.Func("main")
	main.Set(x, hl.Mul(hl.Load(x), hl.Load(y))) // 6: exact
	main.Set(x, hl.Add(hl.Load(x), hl.Const(0.5)))
	main.Out(hl.Load(x))
	main.Halt()
	m, err := p.Build("main")
	if err != nil {
		t.Fatal(err)
	}
	an, err := errbound.Analyze(m, errbound.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !an.Converged {
		t.Fatal("analysis did not converge")
	}
	var mul, add *errbound.SiteBound
	for _, f := range m.Funcs {
		for _, ins := range f.Instrs {
			sb, ok := an.Sites[ins.Addr]
			if !ok {
				continue
			}
			v := sb
			switch ins.Op {
			case isa.MULSD:
				mul = &v
			case isa.ADDSD:
				add = &v
			}
		}
	}
	if mul == nil || add == nil {
		t.Fatal("candidate sites not reported")
	}
	if !mul.Exact {
		t.Errorf("2*3 not proved exact: %s", mul.Reason)
	}
	if mul.Lo != 6 || mul.Hi != 6 {
		t.Errorf("mul interval [%g, %g], want [6, 6]", mul.Lo, mul.Hi)
	}
	if !add.Exact {
		t.Errorf("6+0.5 not proved exact: %s", add.Reason)
	}
}

// TestAnalyzeUnrepresentable rejects arithmetic on a constant that needs
// all 53 significand bits.
func TestAnalyzeUnrepresentable(t *testing.T) {
	p := hl.New("inexact", hl.ModeF64)
	x := p.ScalarInit("x", 0.1)
	main := p.Func("main")
	main.Set(x, hl.Add(hl.Load(x), hl.Const(1.0)))
	main.Out(hl.Load(x))
	main.Halt()
	m, err := p.Build("main")
	if err != nil {
		t.Fatal(err)
	}
	an, err := errbound.Analyze(m, errbound.Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, sb := range an.Sites {
		if sb.Op == isa.ADDSD && sb.Exact {
			t.Error("0.1+1 wrongly proved exact")
		}
	}
}

// TestAnalyzeCountedLoop proves an integer-grid accumulator inside a
// counted loop: the trip-count bound must keep it finite instead of
// widening the sum to infinity.
func TestAnalyzeCountedLoop(t *testing.T) {
	p := hl.New("loop", hl.ModeF64)
	acc := p.ScalarInit("acc", 0)
	i := p.Int("i")
	main := p.Func("main")
	main.For(i, hl.IConst(0), hl.IConst(100), func() {
		main.Set(acc, hl.Add(hl.Load(acc), hl.Const(1.0)))
	})
	main.Out(hl.Load(acc))
	main.Halt()
	m, err := p.Build("main")
	if err != nil {
		t.Fatal(err)
	}
	an, err := errbound.Analyze(m, errbound.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !an.Converged {
		t.Fatal("analysis did not converge")
	}
	found := false
	for _, sb := range an.Sites {
		if sb.Op == isa.ADDSD && !sb.Unreached {
			found = true
			if !sb.Exact {
				t.Errorf("counted accumulator not proved exact: %s", sb.Reason)
			}
			if sb.Hi > 1e6 {
				t.Errorf("accumulator bound too loose: hi=%g", sb.Hi)
			}
		}
	}
	if !found {
		t.Fatal("no reached ADDSD site")
	}
}

// TestAnalyzeRanges seeds an input range assumption and checks the
// interval propagates; a bare range (no grid) must never prove exactness.
func TestAnalyzeRanges(t *testing.T) {
	p := hl.New("ranges", hl.ModeF64)
	x := p.ScalarInit("x", 0)
	main := p.Func("main")
	main.Set(x, hl.Mul(hl.Load(x), hl.Const(2.0)))
	main.Out(hl.Load(x))
	main.Halt()
	m, err := p.Build("main")
	if err != nil {
		t.Fatal(err)
	}
	// Recover x's data-slot displacement from its load, and the mul site.
	var disp int32
	var haveDisp bool
	var mulAddr uint64
	for _, f := range m.Funcs {
		for _, ins := range f.Instrs {
			if ins.Op == isa.MOVSD && !haveDisp && ins.B.Kind == isa.KindMem {
				disp = ins.B.Mem.Disp
				haveDisp = true
			}
			if ins.Op == isa.MULSD {
				mulAddr = ins.Addr
			}
		}
	}
	if !haveDisp {
		t.Fatal("no scalar load found")
	}
	an, err := errbound.Analyze(m, errbound.Options{
		Ranges: map[int32][2]float64{disp: {1, 64}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !an.Converged {
		t.Fatal("analysis did not converge")
	}
	sb, ok := an.Sites[mulAddr]
	if !ok {
		t.Fatal("mul site missing")
	}
	if sb.Exact {
		t.Error("range seed alone must not prove exactness (no grid fact)")
	}
	if sb.Lo < 2 || sb.Hi > 128 {
		t.Errorf("seeded interval [%g, %g], want within [2, 128]", sb.Lo, sb.Hi)
	}
}

// TestEPProofs pins the flagship example: EP's integer tally accumulators
// prove exact while randlc's 2^-46-grid arithmetic stays unproved.
func TestEPProofs(t *testing.T) {
	b, err := kernels.Get("ep", kernels.ClassW)
	if err != nil {
		t.Fatal(err)
	}
	an, err := errbound.Analyze(b.Module, errbound.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !an.Converged {
		t.Fatal("EP analysis did not converge")
	}
	proved := map[string]int{}
	for _, f := range b.Module.Funcs {
		for _, ins := range f.Instrs {
			sb, ok := an.Sites[ins.Addr]
			if !ok || !sb.Exact || sb.Unreached {
				continue
			}
			proved[f.Name]++
			if f.Name == "randlc" && sb.Grid > 0 && sb.Grid < 1 {
				// randlc's fraction arithmetic lives on a 2^-46 grid the
				// single significand cannot carry; any sub-integer proof
				// there would be unsound.
				t.Errorf("randlc %#x (%v) proved exact on sub-integer grid %g",
					sb.Addr, sb.Op, sb.Grid)
			}
		}
	}
	total := 0
	for _, n := range proved {
		total += n
	}
	if total == 0 {
		t.Fatalf("EP proves nothing: %+v", proved)
	}
	if proved["gauss"] == 0 {
		t.Errorf("gauss tally accumulators not proved: %+v", proved)
	}
}

// TestRewriteFlipsProof: expression rewriting can flip a statement from
// unproved to proved. Here constant folding removes a MULSD whose 0.1
// operand no single can carry; what remains is an exact integer add, so
// the rewritten build proves every site while the baseline cannot — and
// because folding mirrors the VM's arithmetic exactly, the outputs stay
// bit-identical.
func TestRewriteFlipsProof(t *testing.T) {
	build := func(rw bool) *prog.Module {
		p := hl.New("flip", hl.ModeF64)
		if rw {
			p.EnableRewrite()
		}
		x := p.ScalarInit("x", 42)
		main := p.Func("main")
		main.Set(x, hl.Add(hl.Load(x), hl.Mul(hl.Const(0.1), hl.Const(10))))
		main.Out(hl.Load(x))
		main.Halt()
		m, err := p.Build("main")
		if err != nil {
			t.Fatal(err)
		}
		return m
	}
	base, rew := build(false), build(true)
	ban, err := errbound.Analyze(base, errbound.Options{})
	if err != nil {
		t.Fatal(err)
	}
	ran, err := errbound.Analyze(rew, errbound.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if ban.Exact() == len(ban.Sites) {
		t.Fatal("baseline unexpectedly proves everything — flip has no subject")
	}
	if ran.Exact() != len(ran.Sites) || len(ran.Sites) == 0 {
		t.Errorf("rewritten build not fully proved: %d of %d", ran.Exact(), len(ran.Sites))
	}
	refM, err := vm.New(base)
	if err != nil {
		t.Fatal(err)
	}
	if err := refM.Run(); err != nil {
		t.Fatal(err)
	}
	gotM, err := vm.New(rew)
	if err != nil {
		t.Fatal(err)
	}
	if err := gotM.Run(); err != nil {
		t.Fatal(err)
	}
	sameOutputs(t, "flip", refM.Out, gotM.Out, 0)
}

// lowerProved lowers every proved candidate (honoring Base ignores) and
// returns the instrumented module plus the lowered-site count.
func lowerProved(t *testing.T, m *prog.Module, base *config.Config, an *errbound.Analysis) (*prog.Module, int) {
	t.Helper()
	c := base
	if c == nil {
		var err error
		c, err = config.FromModule(m)
		if err != nil {
			t.Fatal(err)
		}
	}
	eff := map[uint64]config.Precision{}
	for _, ad := range c.Candidates() {
		if an.ExactAt(ad) {
			eff[ad] = config.Single
		}
	}
	inst, err := replace.InstrumentMap(m, eff, replace.InstrumentOptions{})
	if err != nil {
		t.Fatal(err)
	}
	return inst, len(eff)
}

// sameOutputs asserts decoded outputs are bit-identical.
func sameOutputs(t *testing.T, label string, ref, got []vm.OutVal, lowered int) {
	t.Helper()
	rv, gv := verify.Decode(ref), verify.Decode(got)
	if len(gv) != len(rv) {
		t.Fatalf("%s: output length %d, want %d", label, len(gv), len(rv))
	}
	for i := range gv {
		if math.Float64bits(gv[i]) != math.Float64bits(rv[i]) {
			t.Fatalf("%s: output %d differs with %d proved sites lowered: %x vs %x",
				label, i, lowered, math.Float64bits(gv[i]), math.Float64bits(rv[i]))
		}
	}
}

// TestSoundnessSerialKernels is the differential soundness suite: on every
// serial kernel at class W, lowering every proved-exact site to single
// must leave the program output bit-identical to the double run.
func TestSoundnessSerialKernels(t *testing.T) {
	for _, name := range kernels.Names() {
		name := name
		t.Run(name, func(t *testing.T) {
			b, err := kernels.Get(name, kernels.ClassW)
			if err != nil {
				t.Fatal(err)
			}
			an, err := errbound.Analyze(b.Module, errbound.Options{})
			if err != nil {
				t.Fatal(err)
			}
			ref, err := vm.New(b.Module)
			if err != nil {
				t.Fatal(err)
			}
			ref.MaxSteps = b.MaxSteps
			if err := ref.Run(); err != nil {
				t.Fatal(err)
			}
			inst, n := lowerProved(t, b.Module, b.Base, an)
			if n == 0 {
				t.Skip("no proved site to lower")
			}
			got, err := vm.New(inst)
			if err != nil {
				t.Fatal(err)
			}
			got.MaxSteps = b.MaxSteps
			if err := got.Run(); err != nil {
				t.Fatalf("lowered run faulted with %d proved sites: %v", n, err)
			}
			sameOutputs(t, name, ref.Out, got.Out, n)
			if !b.Verify(got.Out) {
				t.Error("lowered run fails kernel verification")
			}
		})
	}
}

// TestSoundnessMPIKernels: the MPI kernels have no verifier routine, so
// soundness is rank-0 output bit-identity across the 2-rank world.
func TestSoundnessMPIKernels(t *testing.T) {
	const ranks = 2
	for _, name := range kernels.MPIKernelNames() {
		name := name
		t.Run(name, func(t *testing.T) {
			m, err := kernels.MPISource(name, kernels.ClassW)
			if err != nil {
				t.Fatal(err)
			}
			an, err := errbound.Analyze(m, errbound.Options{})
			if err != nil {
				t.Fatal(err)
			}
			inst, n := lowerProved(t, m, nil, an)
			if n == 0 {
				t.Skip("no proved site to lower")
			}
			refWorld, err := mpi.RunWorld(m, ranks, 0)
			if err != nil {
				t.Fatal(err)
			}
			gotWorld, err := mpi.RunWorld(inst, ranks, 0)
			if err != nil {
				t.Fatalf("lowered world faulted with %d proved sites: %v", n, err)
			}
			sameOutputs(t, name, refWorld[0].Out, gotWorld[0].Out, n)
		})
	}
}

// TestSoundnessRandomPrograms fuzzes the analyzer with deterministic
// pseudo-random straight-line/loop programs: everything proved must stay
// bit-identical when lowered to single.
func TestSoundnessRandomPrograms(t *testing.T) {
	// A fixed-seed LCG keeps the suite reproducible without flags.
	state := uint64(0x9E3779B97F4A7C15)
	rnd := func(n int) int {
		state = state*6364136223846793005 + 1442695040888963407
		return int((state >> 33) % uint64(n))
	}
	consts := []float64{1, 2, 0.5, 3, 145, 0.1, 1e-9, 1024, 7, 0.25}
	lowered := 0
	for pi := 0; pi < 40; pi++ {
		p := hl.New("fuzz", hl.ModeF64)
		vars := []hl.FVar{
			p.ScalarInit("a", consts[rnd(len(consts))]),
			p.ScalarInit("b", consts[rnd(len(consts))]),
			p.ScalarInit("c", consts[rnd(len(consts))]),
		}
		i := p.Int("i")
		main := p.Func("main")
		expr := func() hl.Expr {
			x := hl.Load(vars[rnd(len(vars))])
			for k := 0; k < 1+rnd(3); k++ {
				y := hl.Load(vars[rnd(len(vars))])
				switch rnd(6) {
				case 0:
					x = hl.Add(x, y)
				case 1:
					x = hl.Sub(x, y)
				case 2:
					x = hl.Mul(x, y)
				case 3:
					x = hl.Add(x, hl.Const(consts[rnd(len(consts))]))
				case 4:
					x = hl.Max(x, y)
				case 5:
					x = hl.Min(x, y)
				}
			}
			return x
		}
		nstmt := 2 + rnd(3)
		for s := 0; s < nstmt; s++ {
			v := vars[rnd(len(vars))]
			if rnd(3) == 0 {
				e := expr()
				main.For(i, hl.IConst(0), hl.IConst(int64(1+rnd(20))), func() {
					main.Set(v, e)
				})
			} else {
				main.Set(v, expr())
			}
		}
		for _, v := range vars {
			main.Out(hl.Load(v))
		}
		main.Halt()
		m, err := p.Build("main")
		if err != nil {
			t.Fatal(err)
		}
		an, err := errbound.Analyze(m, errbound.Options{})
		if err != nil {
			t.Fatalf("prog %d: %v", pi, err)
		}
		inst, n := lowerProved(t, m, nil, an)
		if n == 0 {
			continue
		}
		lowered++
		ref, err := vm.New(m)
		if err != nil {
			t.Fatal(err)
		}
		if err := ref.Run(); err != nil {
			t.Fatal(err)
		}
		got, err := vm.New(inst)
		if err != nil {
			t.Fatal(err)
		}
		if err := got.Run(); err != nil {
			t.Fatalf("prog %d: lowered run faulted: %v", pi, err)
		}
		sameOutputs(t, "fuzz", ref.Out, got.Out, n)
	}
	if lowered == 0 {
		t.Error("fuzz suite never lowered a proved site — generator too conservative")
	}
}
