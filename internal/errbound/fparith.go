package errbound

import (
	"math"

	"fpmix/internal/isa"
)

// arithVM mirrors the VM's scalar-double arithmetic bit for bit
// (internal/vm fpexec.go arith64), so singleton transfers are exact.
func arithVM(op isa.Op, a, b float64) float64 {
	switch op {
	case isa.ADDSD:
		return a + b
	case isa.SUBSD:
		return a - b
	case isa.MULSD:
		return a * b
	case isa.DIVSD:
		return a / b
	case isa.MINSD:
		// x86 semantics: return b on NaN or equality.
		if a < b {
			return a
		}
		return b
	default: // MAXSD
		if a > b {
			return a
		}
		return b
	}
}

func transcVM(op isa.Op, x float64) float64 {
	switch op {
	case isa.SINSD:
		return math.Sin(x)
	case isa.COSSD:
		return math.Cos(x)
	case isa.EXPSD:
		return math.Exp(x)
	default: // LOGSD
		return math.Log(x)
	}
}

// fpExact abstracts a concretely known float result. A zero result's
// int view stays top: the abstract [0,0] interval cannot distinguish
// +0 from -0, so the bit pattern is not pinned.
func fpExact(v float64, i int) aval {
	r := fromF64(v, int32(i))
	if v == 0 {
		r.topI()
	}
	return r
}

func containsZero(v *aval) bool { return !v.emptyF() && v.lo <= 0 && v.hi >= 0 }

// fpArith abstracts one scalar-double arithmetic instruction.
func (az *analyzer) fpArith(op isa.Op, a, b aval, i int) aval {
	finite := func(v *aval) bool { return !v.mayNaN && !v.emptyF() && !v.hasInf() }

	// Correlation rules from the shared noise symbol. These are the
	// patterns the hl compiler emits for x-x, negation, and abs.
	if a.sym != 0 && a.sym == b.sym {
		switch {
		case op == isa.SUBSD && a.symNeg == b.symNeg && finite(&a) && finite(&b):
			return fromF64(0, int32(i)) // x - x == +0 exactly
		case op == isa.ADDSD && a.symNeg != b.symNeg && finite(&a) && finite(&b):
			return fromF64(0, int32(i)) // x + (-x) == +0 exactly
		case op == isa.MULSD && !a.mayNaN && !b.mayNaN && !a.emptyF():
			r := squareRange(&a, i) // x*x (or (-x)*(-x)): a square
			if a.symNeg != b.symNeg {
				r.lo, r.hi = -r.hi, -r.lo // x * -x == -(x^2)
			}
			return r
		case (op == isa.MAXSD || op == isa.MINSD) && a.symNeg != b.symNeg && !a.mayNaN && !b.mayNaN:
			r := absRange(&a, i) // max(x,-x) == |x|; min == -|x|
			if op == isa.MINSD {
				r.lo, r.hi = -r.hi, -r.lo
			}
			return r
		}
	}

	// Negation: 0 - x. The result keeps x's symbol with the sign flipped,
	// which is what lets a later MAXSD recognize |x|.
	if op == isa.SUBSD && !a.mayNaN && a.lo == 0 && a.hi == 0 && !b.mayNaN && !b.emptyF() {
		var r aval
		if bv, ok := b.singleton(); ok && bv != 0 {
			r = fpExact(-bv, i)
		} else {
			r = fpExact(0, i) // placeholder; fields set below
			r.lo, r.hi = -b.hi, -b.lo
			r.topI()
		}
		r.grid = b.grid
		r.sym, r.symNeg = b.sym, !b.symNeg
		r.acc = -1
		r.src = int32(i)
		return r
	}

	// Singleton fast path: the analyzer computes exactly what the VM
	// computes.
	if av, aok := a.singleton(); aok {
		if bv, bok := b.singleton(); bok {
			r := fpExact(arithVM(op, av, bv), i)
			if op == isa.ADDSD || op == isa.SUBSD {
				return az.foldAcc(op, &a, &b, r)
			}
			return r
		}
	}

	var r aval
	r.topI()
	r.acc = -1
	r.src = int32(i)
	r.sym = 0

	if a.emptyF() || b.emptyF() {
		// A pure-NaN first operand makes min/max's compare false and
		// passes b through unchanged (x86 semantics).
		if (op == isa.MINSD || op == isa.MAXSD) && a.emptyF() && a.mayNaN && !b.emptyF() {
			return b
		}
		r.lo, r.hi = math.Inf(1), math.Inf(-1)
		r.mayNaN = a.mayNaN || b.mayNaN
		r.grid = 0
		return r
	}

	switch op {
	case isa.ADDSD, isa.SUBSD:
		r.mayNaN = a.mayNaN || b.mayNaN || (a.hasInf() && b.hasInf())
		r.lo, r.hi, r.mayNaN = combos(op, &a, &b, r.mayNaN)
		r.grid = gridMin(a.grid, b.grid)
		return az.foldAcc(op, &a, &b, r)
	case isa.MULSD:
		r.mayNaN = a.mayNaN || b.mayNaN ||
			(a.hasInf() && containsZero(&b)) || (b.hasInf() && containsZero(&a))
		r.lo, r.hi, r.mayNaN = combos(op, &a, &b, r.mayNaN)
		r.grid = gridMul(a.grid, b.grid)
	case isa.DIVSD:
		if containsZero(&b) {
			r.topF()
			r.src = int32(i)
			return r
		}
		r.mayNaN = a.mayNaN || b.mayNaN || (a.hasInf() && b.hasInf())
		r.lo, r.hi, r.mayNaN = combos(op, &a, &b, r.mayNaN)
		if bv, ok := b.singleton(); ok && bv != 0 && gridOf(bv) == math.Abs(bv) {
			// Division by a power of two rescales the grid exactly.
			r.grid = gridMul(a.grid, 1/math.Abs(bv))
		}
	case isa.MINSD, isa.MAXSD:
		// Result is NaN only when b is NaN (a NaN compare returns b).
		r.mayNaN = b.mayNaN
		if op == isa.MINSD {
			r.lo, r.hi = math.Min(a.lo, b.lo), math.Min(a.hi, b.hi)
		} else {
			r.lo, r.hi = math.Max(a.lo, b.lo), math.Max(a.hi, b.hi)
		}
		r.grid = gridMin(a.grid, b.grid)
		if a.mayNaN {
			// a NaN passes any b value through.
			r.lo = math.Min(r.lo, b.lo)
			r.hi = math.Max(r.hi, b.hi)
		}
	}
	return r
}

// combos evaluates the four endpoint combinations with the VM's own
// arithmetic; correct rounding is monotone in each argument, so the
// extrema are at corners and no outward nudge is needed.
func combos(op isa.Op, a, b *aval, mayNaN bool) (float64, float64, bool) {
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, x := range [2]float64{a.lo, a.hi} {
		for _, y := range [2]float64{b.lo, b.hi} {
			v := arithVM(op, x, y)
			if math.IsNaN(v) {
				mayNaN = true
				continue
			}
			if v < lo {
				lo = v
			}
			if v > hi {
				hi = v
			}
		}
	}
	// Products of intervals spanning zero have interior extrema at the
	// zero crossings, which evaluate to 0.
	if op == isa.MULSD && (containsZero(a) || containsZero(b)) {
		if lo > 0 {
			lo = 0
		}
		if hi < 0 {
			hi = 0
		}
	}
	return lo, hi, mayNaN
}

// foldAcc threads accumulator provenance through an ADDSD/SUBSD: the
// result is still "cell value plus a delta" with the other operand's
// interval folded into the delta (outward-nudged bound arithmetic).
func (az *analyzer) foldAcc(op isa.Op, a, b *aval, r aval) aval {
	okAddend := func(v *aval) bool { return !v.mayNaN && !v.emptyF() && !v.hasInf() }
	if a.acc >= 0 && b.acc < 0 && okAddend(b) && a.accN < maxAccOps {
		r.acc = a.acc
		r.accN = a.accN + 1
		if op == isa.ADDSD {
			r.accLo = nextDown(a.accLo + b.lo)
			r.accHi = nextUp(a.accHi + b.hi)
		} else {
			r.accLo = nextDown(a.accLo - b.hi)
			r.accHi = nextUp(a.accHi - b.lo)
		}
		return r
	}
	if op == isa.ADDSD && b.acc >= 0 && a.acc < 0 && okAddend(a) && b.accN < maxAccOps {
		r.acc = b.acc
		r.accN = b.accN + 1
		r.accLo = nextDown(b.accLo + a.lo)
		r.accHi = nextUp(b.accHi + a.hi)
		return r
	}
	r.acc = -1
	return r
}

// squareRange is the range of x*x for x in a's interval (rounding is
// monotone, extrema at corners or the zero crossing).
func squareRange(a *aval, i int) aval {
	var r aval
	r.topI()
	r.acc = -1
	r.src = int32(i)
	l2, h2 := a.lo*a.lo, a.hi*a.hi
	if containsZero(a) {
		r.lo, r.hi = 0, math.Max(l2, h2)
	} else {
		r.lo, r.hi = math.Min(l2, h2), math.Max(l2, h2)
	}
	r.grid = gridMul(a.grid, a.grid)
	return r
}

// absRange is the range of |x| for x in a's interval.
func absRange(a *aval, i int) aval {
	var r aval
	r.topI()
	r.acc = -1
	r.src = int32(i)
	switch {
	case a.emptyF():
		r.lo, r.hi = math.Inf(1), math.Inf(-1)
	case a.lo >= 0:
		r.lo, r.hi = a.lo, a.hi
	case a.hi <= 0:
		r.lo, r.hi = -a.hi, -a.lo
	default:
		r.lo, r.hi = 0, math.Max(-a.lo, a.hi)
	}
	r.grid = a.grid
	return r
}

func fpSqrt(b aval, i int) aval {
	if bv, ok := b.singleton(); ok {
		return fpExact(math.Sqrt(bv), i)
	}
	var r aval
	r.topI()
	r.acc = -1
	r.src = int32(i)
	if b.emptyF() {
		r.lo, r.hi = math.Inf(1), math.Inf(-1)
		r.mayNaN = b.mayNaN
		return r
	}
	r.mayNaN = b.mayNaN || b.lo < 0
	if b.hi < 0 {
		r.lo, r.hi = math.Inf(1), math.Inf(-1)
		r.mayNaN = true
		return r
	}
	// Sqrt is correctly rounded and monotone: endpoints are exact.
	r.lo = math.Sqrt(math.Max(b.lo, 0))
	r.hi = math.Sqrt(b.hi)
	return r
}

func fpTransc(op isa.Op, b aval, i int) aval {
	if bv, ok := b.singleton(); ok {
		return fpExact(transcVM(op, bv), i)
	}
	var r aval
	r.topI()
	r.acc = -1
	r.src = int32(i)
	if b.emptyF() {
		r.lo, r.hi = math.Inf(1), math.Inf(-1)
		r.mayNaN = b.mayNaN
		return r
	}
	switch op {
	case isa.SINSD, isa.COSSD:
		r.mayNaN = b.mayNaN || b.hasInf()
		r.lo, r.hi = -1, 1
	case isa.EXPSD:
		r.mayNaN = b.mayNaN
		// The library is not trusted to be correctly rounded: nudge the
		// monotone endpoint images outward.
		r.lo, r.hi = outward(math.Exp(b.lo), math.Exp(b.hi), 4)
		if r.lo < 0 {
			r.lo = 0
		}
	default: // LOGSD
		r.mayNaN = b.mayNaN || b.lo < 0
		if b.hi < 0 {
			r.lo, r.hi = math.Inf(1), math.Inf(-1)
			r.mayNaN = true
			return r
		}
		r.lo, r.hi = outward(math.Log(math.Max(b.lo, 0)), math.Log(b.hi), 4)
	}
	return r
}

// cvtIToF abstracts CVTSI2SD. float64(int64) is monotone, and its image
// is always integral, so the result is on grid 1 even for unknown input.
func cvtIToF(b aval, i int) aval {
	var r aval
	r.topI()
	r.acc = -1
	r.src = int32(i)
	r.mayNaN = false
	r.grid = 1
	if lo, hi, ok := ibounds(&b); ok {
		if lo == hi {
			r = fpExact(float64(lo), i)
			r.src = int32(i)
			return r
		}
		r.lo, r.hi = float64(lo), float64(hi)
	} else {
		r.lo, r.hi = float64(math.MinInt64), float64(math.MaxInt64)
	}
	return r
}

// cvtFToI abstracts CVTTSD2SI (truncation toward zero, monotone).
func cvtFToI(b aval, i int) aval {
	const lim = float64(iSafe)
	if !b.mayNaN && !b.emptyF() && b.lo >= -lim && b.hi <= lim {
		return fromIRange(int64(b.lo), int64(b.hi), int32(i))
	}
	v := top()
	v.src = int32(i)
	return v
}
