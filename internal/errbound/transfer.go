package errbound

import (
	"math"

	"fpmix/internal/dataflow"
	"fpmix/internal/isa"
)

// iSafe bounds integer interval endpoints for overflow-free arithmetic:
// sums and differences of values within ±2^61 cannot wrap.
const iSafe = int64(1) << 61

// maxAccOps caps the number of rounding events an accumulator chain may
// fold between load and store; the clamp pad's 2^-48 slack (16x the
// 2^-52 per-op bound) covers exactly this many.
const maxAccOps = 16

func ibounds(v *aval) (int64, int64, bool) {
	if v.iTop {
		return 0, 0, false
	}
	return v.ilo, v.ihi, true
}

func killCmp(cmp *cmpFact, r uint8) {
	if cmp.valid && (r == cmp.aReg || (!cmp.isImm && r == cmp.bReg)) {
		cmp.valid = false
	}
}

func (az *analyzer) setGPR(st *state, cmp *cmpFact, r uint8, v aval) {
	st.vals[gprLoc(r)] = v
	st.alias[r] = -1
	killCmp(cmp, r)
}

// killAccCell strips accumulator provenance referring to cell c from
// every location: once c is stored to, outstanding copies are no longer
// "c's value plus a delta".
func (az *analyzer) killAccCell(st *state, c int) {
	for i := range st.vals {
		if st.vals[i].acc == int32(c) {
			st.vals[i].acc = -1
		}
	}
}

func (az *analyzer) killAlias(st *state, c int) {
	for r := range st.alias {
		if st.alias[r] == int32(c) {
			st.alias[r] = -1
		}
	}
}

// havocMem forgets everything about memory: all cells go to top, all
// cell generations are bumped (no load correlates across the havoc), and
// all accumulator provenance dies.
func (az *analyzer) havocMem(st *state) {
	for c := range az.cells {
		st.vals[nRegLoc+c] = top()
	}
	for i := range st.vals {
		st.vals[i].acc = -1
	}
	for c := range az.cellGen {
		az.cellGen[c] = az.gen
		az.gen++
	}
	for r := range st.alias {
		st.alias[r] = -1
	}
}

// loadVal abstracts an 8-byte read of m. Strong slot reads mint the
// cell's current generation as a noise symbol (equal symbols on one
// straight-line walk mean equal concrete values); single-cell slot and
// extent reads start accumulator provenance.
func (az *analyzer) loadVal(st *state, m isa.MemRef, i int) (aval, int32) {
	cells, strong := az.g.MemCells(m, false)
	if len(cells) == 0 {
		return top(), -1
	}
	if len(cells) == 1 {
		c := cells[0]
		v := st.vals[nRegLoc+c]
		v.sym, v.symNeg = 0, false
		v.acc = -1
		kind := az.cells[c].Kind
		alias := int32(-1)
		if strong && kind == dataflow.CellSlot {
			v.sym = az.cellGen[c]
			alias = int32(c)
		}
		if kind == dataflow.CellSlot || kind == dataflow.CellExtent {
			v.acc = int32(c)
			v.accLo, v.accHi = 0, 0
			v.accN = 0
		}
		v.src = int32(i)
		return v, alias
	}
	v := st.vals[nRegLoc+cells[0]]
	for _, c := range cells[1:] {
		w := st.vals[nRegLoc+c]
		v.join(&w)
	}
	v.sym, v.symNeg = 0, false
	v.acc = -1
	v.src = int32(i)
	return v, -1
}

// storeVal abstracts an 8-byte write of v through m: record the raw
// value for clamp inference, havoc on summary-reaching stores, cap at a
// proven clamp, then strong or weak update plus the generation bump and
// provenance kills every store implies.
func (az *analyzer) storeVal(st *state, m isa.MemRef, v aval, i int) {
	cells, strong := az.g.MemCells(m, false)
	az.recordStore(i, cells, v)
	for _, c := range cells {
		if c == az.summary {
			az.sawWild = true
			az.havocMem(st)
			return
		}
	}
	for _, c := range cells {
		nv := v
		nv.sym, nv.symNeg = 0, false
		nv.acc = -1
		if cl, ok := az.clamps[c]; ok {
			clampF(&nv, cl)
		}
		if strong && len(cells) == 1 {
			st.vals[nRegLoc+c] = nv
		} else {
			old := st.vals[nRegLoc+c]
			old.join(&nv)
			st.vals[nRegLoc+c] = old
		}
		az.cellGen[c] = az.gen
		az.gen++
		az.killAccCell(st, c)
		az.killAlias(st, c)
	}
}

// clampF caps a stored abstract value at a proven accumulator clamp
// (meet of intervals; the clamp wins if they are disjoint, which can
// happen transiently while the clamped fixpoint settles).
func clampF(v *aval, cl clampInfo) {
	lo, hi := cl.lo, cl.hi
	if !v.mayNaN && !v.emptyF() {
		if v.lo > lo {
			lo = v.lo
		}
		if v.hi < hi {
			hi = v.hi
		}
		if lo > hi {
			lo, hi = cl.lo, cl.hi
		}
	}
	v.lo, v.hi = lo, hi
	v.mayNaN = false
	v.topI()
}

func (az *analyzer) record(i int, a, b, r aval) {
	if !az.recording {
		return
	}
	rec := az.sites[i]
	if rec == nil {
		az.sites[i] = &siteRec{a: a, b: b, r: r, seen: true}
		return
	}
	rec.a.join(&a)
	rec.b.join(&b)
	rec.r.join(&r)
}

func (az *analyzer) recordStore(i int, cells []int, v aval) {
	if !az.recording {
		return
	}
	rec := az.stores[i]
	if rec == nil {
		az.stores[i] = &storeRec{cells: append([]int(nil), cells...), val: v, seen: true}
		return
	}
	rec.val.join(&v)
}

// mkInt builds the result of an integer ALU op.
func mkInt(lo, hi int64, ok bool, i int) aval {
	if !ok {
		v := top()
		v.src = int32(i)
		return v
	}
	return fromIRange(lo, hi, int32(i))
}

// transfer applies one instruction's abstract semantics.
func (az *analyzer) transfer(i int, in *isa.Instr, st *state, cmp *cmpFact) {
	switch in.Op {
	case isa.NOP, isa.HALT, isa.JMP,
		isa.JE, isa.JNE, isa.JL, isa.JLE, isa.JG, isa.JGE,
		isa.JB, isa.JAE, isa.JA, isa.JBE:
		return

	case isa.MOVRI:
		az.setGPR(st, cmp, in.A.Reg, fromBits(uint64(in.B.Imm), int32(i)))
	case isa.MOVRR:
		v := st.vals[gprLoc(in.B.Reg)]
		al := st.alias[in.B.Reg]
		az.setGPR(st, cmp, in.A.Reg, v)
		st.alias[in.A.Reg] = al
	case isa.LOAD:
		v, alias := az.loadVal(st, in.B.Mem, i)
		az.setGPR(st, cmp, in.A.Reg, v)
		st.alias[in.A.Reg] = alias
	case isa.STORE:
		az.storeVal(st, in.A.Mem, st.vals[gprLoc(in.B.Reg)], i)
	case isa.LEA:
		az.setGPR(st, cmp, in.A.Reg, az.addrVal(st, in.B.Mem, i))

	case isa.ADDR, isa.ADDI, isa.SUBR, isa.SUBI, isa.IMULR, isa.IMULI,
		isa.ANDR, isa.ANDI, isa.ORR, isa.ORI, isa.XORR, isa.XORI,
		isa.SHLI, isa.SHRI, isa.IDIVR:
		az.intALU(st, cmp, in, i)

	case isa.CMPR:
		*cmp = cmpFact{valid: true, aReg: in.A.Reg, bReg: in.B.Reg}
	case isa.CMPI:
		*cmp = cmpFact{valid: true, aReg: in.A.Reg, imm: in.B.Imm, isImm: true}
	case isa.TESTR, isa.TESTI, isa.UCOMISS:
		cmp.valid = false

	case isa.CALL:
		az.adjGPR(st, isa.RSP, -8)
		az.stackPush(st, top())
	case isa.RET:
		az.adjGPR(st, isa.RSP, 8)
	case isa.PUSH:
		az.adjGPR(st, isa.RSP, -8)
		az.stackPush(st, st.vals[gprLoc(in.A.Reg)])
	case isa.POP:
		az.setGPR(st, cmp, in.A.Reg, az.stackPop(st, i))
		az.adjGPR(st, isa.RSP, 8)
	case isa.PUSHX:
		az.adjGPR(st, isa.RSP, -16)
		az.stackPush(st, st.vals[xmmLoc(in.A.Reg, 0)])
		az.stackPush(st, st.vals[xmmLoc(in.A.Reg, 1)])
	case isa.POPX:
		v := az.stackPop(st, i)
		st.vals[xmmLoc(in.A.Reg, 0)] = v
		st.vals[xmmLoc(in.A.Reg, 1)] = v
		az.adjGPR(st, isa.RSP, 16)

	case isa.SYSCALL:
		az.syscall(st, cmp, in, i)

	case isa.MOVSD:
		az.movsd(st, cmp, in, i)
	case isa.MOVSS:
		az.movss(st, in, i)
	case isa.MOVAPD:
		az.movapd(st, in, i)
	case isa.MOVQ:
		if in.A.Kind == isa.KindGPR {
			az.setGPR(st, cmp, in.A.Reg, st.vals[xmmLoc(in.B.Reg, 0)])
		} else {
			st.vals[xmmLoc(in.A.Reg, 0)] = st.vals[gprLoc(in.B.Reg)]
		}
	case isa.MOVHQ:
		if in.A.Kind == isa.KindGPR {
			az.setGPR(st, cmp, in.A.Reg, st.vals[xmmLoc(in.B.Reg, 1)])
		} else {
			st.vals[xmmLoc(in.A.Reg, 1)] = st.vals[gprLoc(in.B.Reg)]
		}

	case isa.ANDPD, isa.ORPD, isa.XORPD:
		if in.Op == isa.XORPD && in.B.Kind == isa.KindXMM && in.A.Reg == in.B.Reg {
			z := fromBits(0, int32(i))
			st.vals[xmmLoc(in.A.Reg, 0)] = z
			st.vals[xmmLoc(in.A.Reg, 1)] = z
			return
		}
		t := top()
		t.src = int32(i)
		st.vals[xmmLoc(in.A.Reg, 0)] = t
		st.vals[xmmLoc(in.A.Reg, 1)] = t

	case isa.ADDSD, isa.SUBSD, isa.MULSD, isa.DIVSD, isa.MINSD, isa.MAXSD:
		a := st.vals[xmmLoc(in.A.Reg, 0)]
		b := az.fpSrc(st, in, i)
		r := az.fpArith(in.Op, a, b, i)
		az.record(i, a, b, r)
		st.vals[xmmLoc(in.A.Reg, 0)] = r
	case isa.SQRTSD:
		b := az.fpSrc(st, in, i)
		r := fpSqrt(b, i)
		az.record(i, aval{}, b, r)
		st.vals[xmmLoc(in.A.Reg, 0)] = r
	case isa.SINSD, isa.COSSD, isa.EXPSD, isa.LOGSD:
		b := az.fpSrc(st, in, i)
		r := fpTransc(in.Op, b, i)
		az.record(i, aval{}, b, r)
		st.vals[xmmLoc(in.A.Reg, 0)] = r
	case isa.UCOMISD:
		a := st.vals[xmmLoc(in.A.Reg, 0)]
		b := az.fpSrc(st, in, i)
		az.record(i, a, b, aval{})
		cmp.valid = false

	case isa.CVTSI2SD:
		b := st.vals[gprLoc(in.B.Reg)]
		r := cvtIToF(b, i)
		az.record(i, aval{}, b, r)
		st.vals[xmmLoc(in.A.Reg, 0)] = r
	case isa.CVTTSD2SI:
		b := st.vals[xmmLoc(in.B.Reg, 0)]
		az.record(i, aval{}, b, aval{})
		az.setGPR(st, cmp, in.A.Reg, cvtFToI(b, i))
	case isa.CVTSD2SS, isa.CVTSS2SD, isa.CVTSI2SS:
		t := top()
		t.src = int32(i)
		st.vals[xmmLoc(in.A.Reg, 0)] = t
	case isa.CVTTSS2SI:
		t := top()
		t.src = int32(i)
		az.setGPR(st, cmp, in.A.Reg, t)

	case isa.ADDSS, isa.SUBSS, isa.MULSS, isa.DIVSS, isa.SQRTSS,
		isa.MINSS, isa.MAXSS, isa.SINSS, isa.COSSS, isa.EXPSS, isa.LOGSS:
		t := top()
		t.src = int32(i)
		st.vals[xmmLoc(in.A.Reg, 0)] = t

	case isa.ADDPD, isa.SUBPD, isa.MULPD, isa.DIVPD:
		base := packedScalar(in.Op)
		a0 := st.vals[xmmLoc(in.A.Reg, 0)]
		a1 := st.vals[xmmLoc(in.A.Reg, 1)]
		b0, b1 := az.fpSrcWide(st, in, i)
		r0 := az.fpArith(base, a0, b0, i)
		r1 := az.fpArith(base, a1, b1, i)
		az.record(i, a0, b0, r0)
		st.vals[xmmLoc(in.A.Reg, 0)] = r0
		st.vals[xmmLoc(in.A.Reg, 1)] = r1
	case isa.SQRTPD:
		b0, b1 := az.fpSrcWide(st, in, i)
		r0 := fpSqrt(b0, i)
		r1 := fpSqrt(b1, i)
		az.record(i, aval{}, b0, r0)
		st.vals[xmmLoc(in.A.Reg, 0)] = r0
		st.vals[xmmLoc(in.A.Reg, 1)] = r1

	case isa.ADDPS, isa.SUBPS, isa.MULPS, isa.DIVPS, isa.SQRTPS:
		t := top()
		t.src = int32(i)
		st.vals[xmmLoc(in.A.Reg, 0)] = t
		st.vals[xmmLoc(in.A.Reg, 1)] = t
	}
}

func packedScalar(op isa.Op) isa.Op {
	switch op {
	case isa.ADDPD:
		return isa.ADDSD
	case isa.SUBPD:
		return isa.SUBSD
	case isa.MULPD:
		return isa.MULSD
	default:
		return isa.DIVSD
	}
}

// addrVal computes an effective address abstractly (for LEA).
func (az *analyzer) addrVal(st *state, m isa.MemRef, i int) aval {
	lo, hi, ok := ibounds(&st.vals[gprLoc(m.Base)])
	if !ok || lo < -iSafe || hi > iSafe {
		v := top()
		v.src = int32(i)
		return v
	}
	lo += int64(m.Disp)
	hi += int64(m.Disp)
	if m.HasIndex {
		il, ih, iok := ibounds(&st.vals[gprLoc(m.Index)])
		sc := int64(m.Scale)
		if !iok || il < -iSafe/8 || ih > iSafe/8 || sc < 1 || sc > 8 {
			v := top()
			v.src = int32(i)
			return v
		}
		lo += il * sc
		hi += ih * sc
	}
	return mkInt(lo, hi, true, i)
}

func (az *analyzer) adjGPR(st *state, r uint8, delta int64) {
	v := st.vals[gprLoc(r)]
	if lo, hi, ok := ibounds(&v); ok && lo >= -iSafe && hi <= iSafe {
		st.vals[gprLoc(r)] = fromIRange(lo+delta, hi+delta, v.src)
	} else {
		st.vals[gprLoc(r)] = top()
	}
	st.alias[r] = -1
}

func (az *analyzer) stackPush(st *state, v aval) {
	if az.stack < 0 {
		return
	}
	v.sym, v.symNeg = 0, false
	v.acc = -1
	old := st.vals[nRegLoc+az.stack]
	old.join(&v)
	st.vals[nRegLoc+az.stack] = old
	az.cellGen[az.stack] = az.gen
	az.gen++
	az.killAccCell(st, az.stack)
}

func (az *analyzer) stackPop(st *state, i int) aval {
	if az.stack < 0 {
		return top()
	}
	v := st.vals[nRegLoc+az.stack]
	v.sym, v.symNeg = 0, false
	v.acc = -1
	v.src = int32(i)
	return v
}

func (az *analyzer) intALU(st *state, cmp *cmpFact, in *isa.Instr, i int) {
	d := in.A.Reg
	alo, ahi, aok := ibounds(&st.vals[gprLoc(d)])
	var blo, bhi int64
	bok := true
	switch in.Op {
	case isa.ADDI, isa.SUBI, isa.IMULI, isa.ANDI, isa.ORI, isa.XORI, isa.SHLI, isa.SHRI:
		blo, bhi = in.B.Imm, in.B.Imm
	default:
		blo, bhi, bok = ibounds(&st.vals[gprLoc(in.B.Reg)])
	}

	var lo, hi int64
	ok := false
	switch in.Op {
	case isa.ADDR, isa.ADDI:
		if aok && bok && inSafe(alo, ahi) && inSafe(blo, bhi) {
			lo, hi, ok = alo+blo, ahi+bhi, true
		}
	case isa.SUBR, isa.SUBI:
		if aok && bok && inSafe(alo, ahi) && inSafe(blo, bhi) {
			lo, hi, ok = alo-bhi, ahi-blo, true
		}
	case isa.IMULR, isa.IMULI:
		if aok && bok && mulSafe(alo, ahi, blo, bhi) {
			lo, hi = minMax4(alo*blo, alo*bhi, ahi*blo, ahi*bhi)
			ok = true
		}
	case isa.IDIVR:
		if aok && bok && blo == bhi && blo != 0 && !(blo == -1 && alo == math.MinInt64) {
			q1, q2 := alo/blo, ahi/blo
			if q1 > q2 {
				q1, q2 = q2, q1
			}
			lo, hi, ok = q1, q2, true
		}
	case isa.ANDR, isa.ANDI:
		if aok && bok && alo == ahi && blo == bhi {
			lo, hi, ok = alo&blo, alo&blo, true
		} else if blo == bhi && blo >= 0 {
			// Masking with a non-negative constant bounds the result.
			lo, hi, ok = 0, blo, true
		}
	case isa.ORR, isa.ORI:
		if aok && bok && alo == ahi && blo == bhi {
			lo, hi, ok = alo|blo, alo|blo, true
		}
	case isa.XORR:
		if in.B.Reg == d {
			lo, hi, ok = 0, 0, true
		} else if aok && bok && alo == ahi && blo == bhi {
			lo, hi, ok = alo^blo, alo^blo, true
		}
	case isa.XORI:
		if aok && bok && alo == ahi && blo == bhi {
			lo, hi, ok = alo^blo, alo^blo, true
		}
	case isa.SHLI:
		s := uint(in.B.Imm) & 63
		if aok && alo >= -(iSafe>>s) && ahi <= iSafe>>s {
			lo, hi, ok = alo<<s, ahi<<s, true
		}
	case isa.SHRI:
		s := uint(in.B.Imm) & 63
		if aok && alo >= 0 {
			lo, hi, ok = alo>>s, ahi>>s, true
		}
	}
	az.setGPR(st, cmp, d, mkInt(lo, hi, ok, i))
}

func inSafe(lo, hi int64) bool { return lo >= -iSafe && hi <= iSafe }

func mulSafe(alo, ahi, blo, bhi int64) bool {
	am := math.Max(math.Abs(float64(alo)), math.Abs(float64(ahi)))
	bm := math.Max(math.Abs(float64(blo)), math.Abs(float64(bhi)))
	return am*bm < float64(iSafe)
}

func minMax4(a, b, c, d int64) (int64, int64) {
	lo, hi := a, a
	for _, x := range [3]int64{b, c, d} {
		if x < lo {
			lo = x
		}
		if x > hi {
			hi = x
		}
	}
	return lo, hi
}

func (az *analyzer) syscall(st *state, cmp *cmpFact, in *isa.Instr, i int) {
	switch in.A.Imm {
	case isa.SysOutF64, isa.SysOutF32, isa.SysOutI64, isa.SysMPIBarrier, isa.SysMPISendF64:
		// Read-only host services: no machine-visible state change.
	case isa.SysMPIRank:
		az.setGPR(st, cmp, isa.RAX, fromIRange(0, 1<<20, int32(i)))
	case isa.SysMPISize:
		az.setGPR(st, cmp, isa.RAX, fromIRange(1, 1<<20, int32(i)))
	case isa.SysMPIRecvF64, isa.SysMPIAllreduce, isa.SysMPIBcastF64:
		az.sawMPIWrite = true
		az.havocMem(st)
	default:
		az.sawMPIWrite = true
		az.havocMem(st)
		for r := 0; r < nGPR; r++ {
			if uint8(r) != isa.RSP {
				az.setGPR(st, cmp, uint8(r), top())
			}
		}
	}
}

func (az *analyzer) movsd(st *state, cmp *cmpFact, in *isa.Instr, i int) {
	switch {
	case in.A.Kind == isa.KindXMM && in.B.Kind == isa.KindXMM:
		st.vals[xmmLoc(in.A.Reg, 0)] = st.vals[xmmLoc(in.B.Reg, 0)]
	case in.A.Kind == isa.KindXMM && in.B.Kind == isa.KindMem:
		v, _ := az.loadVal(st, in.B.Mem, i)
		st.vals[xmmLoc(in.A.Reg, 0)] = v
		st.vals[xmmLoc(in.A.Reg, 1)] = fromBits(0, int32(i))
	case in.A.Kind == isa.KindMem && in.B.Kind == isa.KindXMM:
		az.storeVal(st, in.A.Mem, st.vals[xmmLoc(in.B.Reg, 0)], i)
	}
}

func (az *analyzer) movss(st *state, in *isa.Instr, i int) {
	switch {
	case in.A.Kind == isa.KindXMM && in.B.Kind == isa.KindMem:
		// Load form zeroes bits 32..127: lane 0 holds a 32-bit payload.
		var v aval
		v.topF()
		v.lo, v.hi = 0, math.Float64frombits(0xFFFFFFFF)
		v.mayNaN = false
		v.ilo, v.ihi = 0, 0xFFFFFFFF
		v.src = int32(i)
		st.vals[xmmLoc(in.A.Reg, 0)] = v
		st.vals[xmmLoc(in.A.Reg, 1)] = fromBits(0, int32(i))
	case in.A.Kind == isa.KindMem:
		// 4-byte store clobbers half the cell: weak top.
		az.storeVal(st, in.A.Mem, top(), i)
	default:
		t := top()
		t.src = int32(i)
		st.vals[xmmLoc(in.A.Reg, 0)] = t
	}
}

func (az *analyzer) movapd(st *state, in *isa.Instr, i int) {
	switch {
	case in.A.Kind == isa.KindXMM && in.B.Kind == isa.KindXMM:
		st.vals[xmmLoc(in.A.Reg, 0)] = st.vals[xmmLoc(in.B.Reg, 0)]
		st.vals[xmmLoc(in.A.Reg, 1)] = st.vals[xmmLoc(in.B.Reg, 1)]
	case in.A.Kind == isa.KindXMM && in.B.Kind == isa.KindMem:
		l0, l1 := az.loadWide(st, in.B.Mem, i)
		st.vals[xmmLoc(in.A.Reg, 0)] = l0
		st.vals[xmmLoc(in.A.Reg, 1)] = l1
	case in.A.Kind == isa.KindMem && in.B.Kind == isa.KindXMM:
		az.storeWide(st, in.A.Mem, st.vals[xmmLoc(in.B.Reg, 0)], st.vals[xmmLoc(in.B.Reg, 1)], i)
	}
}

func (az *analyzer) loadWide(st *state, m isa.MemRef, i int) (aval, aval) {
	cells, strong := az.g.MemCells(m, true)
	if strong && len(cells) == 2 {
		mk := func(c int) aval {
			v := st.vals[nRegLoc+c]
			v.sym, v.symNeg = 0, false
			v.acc = -1
			if az.cells[c].Kind == dataflow.CellSlot {
				v.sym = az.cellGen[c]
			}
			v.src = int32(i)
			return v
		}
		return mk(cells[0]), mk(cells[1])
	}
	if len(cells) == 0 {
		return top(), top()
	}
	v := st.vals[nRegLoc+cells[0]]
	for _, c := range cells[1:] {
		w := st.vals[nRegLoc+c]
		v.join(&w)
	}
	v.sym, v.symNeg = 0, false
	v.acc = -1
	v.src = int32(i)
	return v, v
}

func (az *analyzer) storeWide(st *state, m isa.MemRef, l0, l1 aval, i int) {
	cells, strong := az.g.MemCells(m, true)
	joined := l0
	joined.join(&l1)
	az.recordStore(i, cells, joined)
	for _, c := range cells {
		if c == az.summary {
			az.sawWild = true
			az.havocMem(st)
			return
		}
	}
	if strong && len(cells) == 2 {
		for k, c := range cells {
			nv := l0
			if k == 1 {
				nv = l1
			}
			nv.sym, nv.symNeg = 0, false
			nv.acc = -1
			if cl, ok := az.clamps[c]; ok {
				clampF(&nv, cl)
			}
			st.vals[nRegLoc+c] = nv
			az.cellGen[c] = az.gen
			az.gen++
			az.killAccCell(st, c)
			az.killAlias(st, c)
		}
		return
	}
	for _, c := range cells {
		nv := joined
		nv.sym, nv.symNeg = 0, false
		nv.acc = -1
		if cl, ok := az.clamps[c]; ok {
			clampF(&nv, cl)
		}
		old := st.vals[nRegLoc+c]
		old.join(&nv)
		st.vals[nRegLoc+c] = old
		az.cellGen[c] = az.gen
		az.gen++
		az.killAccCell(st, c)
		az.killAlias(st, c)
	}
}

// fpSrc reads the scalar-double source operand (XMM lane 0 or memory).
func (az *analyzer) fpSrc(st *state, in *isa.Instr, i int) aval {
	if in.B.Kind == isa.KindXMM {
		return st.vals[xmmLoc(in.B.Reg, 0)]
	}
	v, _ := az.loadVal(st, in.B.Mem, i)
	return v
}

// fpSrcWide reads a 128-bit source's two lanes.
func (az *analyzer) fpSrcWide(st *state, in *isa.Instr, i int) (aval, aval) {
	if in.B.Kind == isa.KindXMM {
		return st.vals[xmmLoc(in.B.Reg, 0)], st.vals[xmmLoc(in.B.Reg, 1)]
	}
	return az.loadWide(st, in.B.Mem, i)
}
