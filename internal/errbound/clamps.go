package errbound

import (
	"math"
	"sort"

	"fpmix/internal/dataflow"
)

// Accumulator clamps.
//
// Plain threshold widening destroys accumulator facts: a cell updated as
// `c = c + d` in a loop climbs the widening ladder to a huge interval
// even when the loop runs a statically known number of times. The clamp
// machinery recovers the bound by a counting argument rather than
// abstract induction (which provably fails: [0,B]+d is not contained in
// [0,B]):
//
// If every store to cell c is either an "init" write of a value in I, or
// an "accumulator" write — the stored value carries provenance "c's
// loaded value plus a delta in [dLo, dHi]" with at most maxAccOps
// roundings folded in — executing at most B_w times, then at any moment
// every value c has ever held lies within
//
//	hull(init(c), I) + [sum_w B_w*min(0,dLo_w), sum_w B_w*max(0,dHi_w)] +- pad
//
// where pad absorbs the per-operation rounding of the real VM: each of
// the at most sum(B_w)*maxAccOps roundings errs by at most
// (|clamp| + maxDelta)*2^-52, and pad = (|lo|+|hi|+maxDelta+1) *
// sum(B_w) * 2^-48 dominates that total with 16x slack.
//
// The argument is a simultaneous induction over execution time: assume
// all clamped cells have stayed within their clamps so far; then the
// clamped abstract fixpoint is sound for the execution prefix, so the
// deltas observed at each store are valid, so the counting bound applies
// to the next store, which verifyClamps checked is inside the clamp.
// The base case is the initial data image. verifyClamps re-derives every
// ingredient from the records of the clamped fixpoint itself; any
// failure drops the clamp and the analysis re-runs without it.
type cellAgg struct {
	initLo, initHi float64
	sumNeg, sumPos float64
	btot, maxD     float64
	hasAcc         bool
	bad            bool
	inits          [][2]float64 // raw init-write intervals, for verification
}

// aggregates classifies the recorded stores per slot/extent cell.
func (az *analyzer) aggregates() map[int]*cellAgg {
	per := map[int]*cellAgg{}
	get := func(c int) *cellAgg {
		if ag, ok := per[c]; ok {
			return ag
		}
		ag := &cellAgg{}
		init := az.cellInit[c]
		if init.mayNaN || init.emptyF() || init.hasInf() {
			ag.bad = true
			ag.initLo, ag.initHi = math.Inf(-1), math.Inf(1)
		} else {
			ag.initLo, ag.initHi = init.lo, init.hi
		}
		per[c] = ag
		return ag
	}

	keys := make([]int, 0, len(az.stores))
	for k := range az.stores {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	for _, si := range keys {
		rec := az.stores[si]
		for _, c := range rec.cells {
			kind := az.cells[c].Kind
			if kind != dataflow.CellSlot && kind != dataflow.CellExtent {
				continue
			}
			ag := get(c)
			v := &rec.val
			eb := az.execB[si]
			if v.acc == int32(c) && len(rec.cells) == 1 && eb > 0 && !v.mayNaN &&
				v.accN <= maxAccOps &&
				!math.IsInf(v.accLo, 0) && !math.IsInf(v.accHi, 0) &&
				!math.IsNaN(v.accLo) && !math.IsNaN(v.accHi) {
				ag.hasAcc = true
				ag.sumNeg += eb * math.Min(0, v.accLo)
				ag.sumPos += eb * math.Max(0, v.accHi)
				ag.btot += eb
				ag.maxD = math.Max(ag.maxD, math.Max(math.Abs(v.accLo), math.Abs(v.accHi)))
			} else {
				if v.mayNaN || v.emptyF() || v.hasInf() {
					ag.bad = true
					continue
				}
				if v.lo < ag.initLo {
					ag.initLo = v.lo
				}
				if v.hi > ag.initHi {
					ag.initHi = v.hi
				}
				ag.inits = append(ag.inits, [2]float64{v.lo, v.hi})
			}
		}
	}
	return per
}

func (ag *cellAgg) bound() (lo, hi float64, ok bool) {
	lo = ag.initLo + ag.sumNeg
	hi = ag.initHi + ag.sumPos
	pad := (math.Abs(lo) + math.Abs(hi) + ag.maxD + 1) * ag.btot * 0x1p-48
	lo, hi = outward(lo-pad, hi+pad, 4)
	if math.IsInf(lo, 0) || math.IsInf(hi, 0) || math.IsNaN(lo) || math.IsNaN(hi) {
		return 0, 0, false
	}
	return lo, hi, true
}

// inferClamps proposes a clamp for every cell whose recorded stores
// classify cleanly, from the unclamped fixpoint's records.
func (az *analyzer) inferClamps() {
	az.clamps = map[int]clampInfo{}
	if az.sawWild || az.sawMPIWrite {
		return
	}
	per := az.aggregates()
	cells := make([]int, 0, len(per))
	for c := range per {
		cells = append(cells, c)
	}
	sort.Ints(cells)
	for _, c := range cells {
		ag := per[c]
		if ag.bad || !ag.hasAcc {
			continue
		}
		if lo, hi, ok := ag.bound(); ok {
			az.clamps[c] = clampInfo{lo: lo, hi: hi}
		}
	}
}

// verifyClamps re-derives every clamp from the clamped fixpoint's own
// records and returns the cells whose clamps failed to verify.
func (az *analyzer) verifyClamps() []int {
	var dropped []int
	dropAll := az.sawWild || az.sawMPIWrite
	var per map[int]*cellAgg
	if !dropAll {
		per = az.aggregates()
	}
	cells := make([]int, 0, len(az.clamps))
	for c := range az.clamps {
		cells = append(cells, c)
	}
	sort.Ints(cells)
	for _, c := range cells {
		cl := az.clamps[c]
		if dropAll {
			dropped = append(dropped, c)
			continue
		}
		init := az.cellInit[c]
		if init.mayNaN || init.emptyF() || init.lo < cl.lo || init.hi > cl.hi {
			dropped = append(dropped, c)
			continue
		}
		ag := per[c]
		if ag == nil {
			continue // no stores reach the cell: the init value suffices
		}
		ok := !ag.bad
		for _, iv := range ag.inits {
			if iv[0] < cl.lo || iv[1] > cl.hi {
				ok = false
				break
			}
		}
		if ok {
			lo, hi, bok := ag.bound()
			ok = bok && lo >= cl.lo && hi <= cl.hi
		}
		if !ok {
			dropped = append(dropped, c)
		}
	}
	return dropped
}
