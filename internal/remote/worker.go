package remote

import (
	"context"
	"errors"
	"sync"
	"time"

	"fpmix/internal/faultinject"
	"fpmix/internal/search"
)

// WorkerOptions configure one out-of-process worker runtime.
type WorkerOptions struct {
	// Server is the daemon base URL (e.g. http://127.0.0.1:8606).
	Server string
	// Name is the worker's self-reported label, shown in
	// `fpmixctl workers`.
	Name string
	// Poll is the claim long-poll window (default 2s).
	Poll time.Duration
	// Net arms deterministic network chaos on every RPC.
	Net *faultinject.NetInjector
	// Sabotage > 0 reports the first N claimed units as worker-side
	// evaluation failures instead of evaluating them — a chaos knob
	// that drives the daemon's requeue and quarantine paths.
	Sabotage int
	// Logf receives progress lines (nil discards them).
	Logf func(format string, args ...any)
}

// Run drives a worker until ctx is cancelled: register, then loop
// claim → evaluate → report, heartbeating in the background. The wire
// protocol's failure recovery is built in — transient transport errors
// retry with backoff inside the client, a 410 Gone (daemon restarted,
// worker retired) re-registers under a fresh identity, quarantine
// drains the claim loop while heartbeats keep the bench visible, and a
// cancellation mid-evaluation reports the unit Interrupted over a
// short grace context so the daemon requeues it immediately instead of
// waiting out the lease.
func Run(ctx context.Context, opts WorkerOptions) error {
	if opts.Poll <= 0 {
		opts.Poll = 2 * time.Second
	}
	if opts.Logf == nil {
		opts.Logf = func(string, ...any) {}
	}
	w := &workerRT{
		c:       NewClient(opts.Server, opts.Net),
		opts:    opts,
		runCtx:  ctx,
		runners: make(map[string]*search.UnitRunner),
	}
	for ctx.Err() == nil {
		reg, err := w.c.Register(ctx, opts.Name)
		if err != nil {
			if ctx.Err() != nil {
				return nil
			}
			opts.Logf("register: %v", err)
			sleep(ctx, time.Second)
			continue
		}
		opts.Logf("registered as %s (heartbeat %dms, expiry %dms)",
			reg.ID, reg.HeartbeatMS, reg.ExpiryMS)
		if err := w.serve(ctx, reg); errors.Is(err, ErrGone) {
			opts.Logf("identity %s gone; re-registering", reg.ID)
			continue
		} else if err != nil && ctx.Err() == nil {
			opts.Logf("serve: %v", err)
			sleep(ctx, time.Second)
		}
	}
	return nil
}

// workerRT is the runtime state behind Run.
type workerRT struct {
	c      *Client
	opts   WorkerOptions
	runCtx context.Context

	mu        sync.Mutex
	runners   map[string]*search.UnitRunner // job ID → local evaluation stack
	sabotaged int
}

// serve runs one registration epoch: claim/evaluate/report under the
// given identity until the context ends (returns nil) or the daemon
// forgets the identity (returns ErrGone).
func (w *workerRT) serve(ctx context.Context, reg RegisterResponse) error {
	hctx, hcancel := context.WithCancel(ctx)
	defer hcancel()
	interval := time.Duration(reg.HeartbeatMS) * time.Millisecond
	if interval <= 0 {
		interval = time.Second
	}
	gone := make(chan struct{})
	go w.beat(hctx, reg.ID, interval, gone)
	for {
		select {
		case <-ctx.Done():
			return nil
		case <-gone:
			return ErrGone
		default:
		}
		resp, err := w.c.Claim(ctx, reg.ID, w.opts.Poll)
		if errors.Is(err, ErrGone) {
			return ErrGone
		}
		if ctx.Err() != nil {
			return nil
		}
		if err != nil {
			w.opts.Logf("claim: %v", err)
			sleep(ctx, time.Second)
			continue
		}
		if resp.State == "quarantined" {
			// Benched: stop claiming, keep heartbeating so the registry
			// shows the drained worker instead of expiring it.
			sleep(ctx, w.opts.Poll)
			continue
		}
		if resp.Lease == nil {
			continue // long-poll window elapsed empty; claim again
		}
		w.handle(ctx, reg.ID, resp.Lease)
	}
}

// beat heartbeats at the daemon-assigned interval. A transient failure
// is ignored — the next tick retries, and claims/reports count as
// beats anyway — but a 410 Gone ends the registration epoch.
func (w *workerRT) beat(ctx context.Context, id string, interval time.Duration, gone chan<- struct{}) {
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
		}
		if _, err := w.c.Heartbeat(ctx, id); errors.Is(err, ErrGone) {
			close(gone)
			return
		}
	}
}

// handle evaluates one leased unit and reports the outcome. The report
// echoes the lease's (worker, job, key, epoch) idempotency token; an
// accepted=false answer means the delivery was a duplicate or the
// lease broke, and the worker simply moves on.
func (w *workerRT) handle(ctx context.Context, id string, l *Lease) {
	req := ReportRequest{Worker: id, Job: l.Job, Key: l.Unit.Key, Epoch: l.Epoch}
	unit, uerr := l.Unit.Unit()
	switch {
	case uerr != nil:
		req.Error = uerr.Error()
	case w.sabotageNext():
		req.Error = "sabotage: injected worker-side fault"
	default:
		runner, err := w.runnerFor(ctx, l.Job)
		if err != nil {
			req.Error = err.Error()
		} else if v, err := runner.Evaluate(unit); err != nil {
			req.Error = err.Error()
		} else {
			req.Verdict = v
		}
	}
	if req.Error != "" && ctx.Err() != nil {
		// The failure was our own shutdown tearing the stack down, not a
		// broken environment: report an interrupt (requeue, no strike).
		req.Error = ""
		req.Verdict = search.Verdict{Interrupted: true}
	}
	rctx := ctx
	if ctx.Err() != nil {
		// Graceful drain: flush the final (Interrupted) report over a
		// short grace context so the daemon requeues the unit now rather
		// than waiting out the lease expiry.
		var cancel context.CancelFunc
		rctx, cancel = context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
	}
	accepted, err := w.c.Report(rctx, req)
	switch {
	case err != nil:
		w.opts.Logf("report %s/%s: %v", l.Job, l.Unit.Key, err)
	case !accepted:
		w.opts.Logf("report %s/%s: discarded (duplicate or lost lease)", l.Job, l.Unit.Key)
	}
}

// sabotageNext consumes one sabotage token if any remain.
func (w *workerRT) sabotageNext() bool {
	if w.opts.Sabotage <= 0 {
		return false
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.sabotaged >= w.opts.Sabotage {
		return false
	}
	w.sabotaged++
	return true
}

// runnerFor returns the local evaluation stack for a job, building it
// on first use from the daemon-served job spec — the same engine mode
// and chaos wiring the daemon's own in-process runner uses, so remote
// verdicts are indistinguishable from local ones. Runners are cached
// per job for the life of the process; job IDs are stable across
// daemon restarts and specs are immutable, so the cache never goes
// stale.
func (w *workerRT) runnerFor(ctx context.Context, job string) (*search.UnitRunner, error) {
	w.mu.Lock()
	if r, ok := w.runners[job]; ok {
		w.mu.Unlock()
		return r, nil
	}
	w.mu.Unlock()
	spec, err := w.c.JobSpec(ctx, job)
	if err != nil {
		return nil, err
	}
	target, err := spec.Build()
	if err != nil {
		return nil, err
	}
	mode := search.EngineFork
	if spec.NoFork {
		mode = search.EngineOn
	}
	var chaos *faultinject.Injector
	if spec.Chaos != 0 {
		chaos = faultinject.New(spec.Chaos, faultinject.DefaultRates, 0)
	}
	r, err := search.NewUnitRunner(target, search.Options{
		Engine:  mode,
		Context: w.runCtx,
		Chaos:   chaos,
	})
	if err != nil {
		return nil, err
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	if prev, ok := w.runners[job]; ok {
		return prev, nil
	}
	w.runners[job] = r
	return r, nil
}

// sleep waits d or until ctx ends.
func sleep(ctx context.Context, d time.Duration) {
	select {
	case <-time.After(d):
	case <-ctx.Done():
	}
}
