package remote

import (
	"context"
	"errors"
	"runtime"
	"sync"
	"time"

	"fpmix/internal/faultinject"
	"fpmix/internal/search"
)

// WorkerOptions configure one out-of-process worker runtime.
type WorkerOptions struct {
	// Server is the daemon base URL (e.g. http://127.0.0.1:8606).
	Server string
	// Name is the worker's self-reported label, shown in
	// `fpmixctl workers`.
	Name string
	// Poll is the claim long-poll window (default 2s).
	Poll time.Duration
	// Parallel is how many evaluations run concurrently over the job's
	// shared UnitRunner (default runtime.NumCPU()).
	Parallel int
	// Batch is how many leases the worker keeps in hand — evaluating
	// plus prefetched — and the upper bound on verdicts per report RPC
	// (default max(4, 2×Parallel)). The claim loop tops the buffer up
	// while evaluations run, so delivery pipelines with execution.
	Batch int
	// Net arms deterministic network chaos on every RPC.
	Net *faultinject.NetInjector
	// Sabotage > 0 reports the first N claimed units as worker-side
	// evaluation failures instead of evaluating them — a chaos knob
	// that drives the daemon's requeue and quarantine paths.
	Sabotage int
	// Logf receives progress lines (nil discards them).
	Logf func(format string, args ...any)
}

// Run drives a worker until ctx is cancelled: register, then pipeline
// claim → evaluate → report under one identity, heartbeating in the
// background. Claims prefetch the next batch of units while the
// current ones evaluate on a pool of Parallel goroutines, and verdicts
// ship back in batches — so RPC round-trips overlap with evaluation
// instead of serializing with it. The wire protocol's failure recovery
// is built in: transient transport errors retry with jittered backoff
// (inside the client per RPC, and across the register/claim loops so a
// briefly-unreachable daemon never sees a synchronized thundering herd
// from a large fleet), a 410 Gone (daemon restarted, worker retired)
// re-registers under a fresh identity, quarantine drains the claim
// loop while heartbeats keep the bench visible, and a cancellation
// mid-evaluation reports the remaining units Interrupted over a short
// grace context so the daemon requeues them immediately instead of
// waiting out the leases.
func Run(ctx context.Context, opts WorkerOptions) error {
	if opts.Poll <= 0 {
		opts.Poll = 2 * time.Second
	}
	if opts.Parallel <= 0 {
		opts.Parallel = runtime.NumCPU()
	}
	if opts.Batch <= 0 {
		opts.Batch = 2 * opts.Parallel
		if opts.Batch < 4 {
			opts.Batch = 4
		}
	}
	if opts.Logf == nil {
		opts.Logf = func(string, ...any) {}
	}
	w := &workerRT{
		c:       NewClient(opts.Server, opts.Net),
		opts:    opts,
		runCtx:  ctx,
		runners: make(map[string]*search.UnitRunner),
	}
	streak := 0
	for ctx.Err() == nil {
		reg, err := w.c.Register(ctx, opts.Name, opts.Parallel)
		if err != nil {
			if ctx.Err() != nil {
				return nil
			}
			opts.Logf("register: %v", err)
			streak++
			w.c.Backoff(ctx, backoffAttempt(streak))
			continue
		}
		streak = 0
		opts.Logf("registered as %s (heartbeat %dms, expiry %dms, parallel %d, batch %d)",
			reg.ID, reg.HeartbeatMS, reg.ExpiryMS, opts.Parallel, opts.Batch)
		if err := w.serve(ctx, reg); errors.Is(err, ErrGone) {
			opts.Logf("identity %s gone; re-registering", reg.ID)
			continue
		} else if err != nil && ctx.Err() == nil {
			opts.Logf("serve: %v", err)
			streak++
			w.c.Backoff(ctx, backoffAttempt(streak))
		}
	}
	return nil
}

// backoffAttempt caps a failure streak at the client's deepest backoff
// step so the delay saturates instead of overflowing.
func backoffAttempt(streak int) int {
	if streak > maxAttempts {
		return maxAttempts
	}
	return streak
}

// workerRT is the runtime state behind Run.
type workerRT struct {
	c      *Client
	opts   WorkerOptions
	runCtx context.Context

	mu        sync.Mutex
	runners   map[string]*search.UnitRunner // job ID → local evaluation stack
	sabotaged int
	held      map[string]struct{} // job\x00key of leases claimed and not yet reported
	reported  map[string]int      // job\x00key → highest epoch already reported
	evals     int                 // evaluations running right now
	slot      chan struct{}       // pulsed when reported units free batch room
}

// reportedCap bounds the reported-epoch memory; past it the map resets
// wholesale (the worst a forgotten entry costs is one wasted duplicate
// evaluation whose report the daemon discards).
const reportedCap = 4096

// heldCount is the number of leases in the worker's hands.
func (w *workerRT) heldCount() int {
	w.mu.Lock()
	defer w.mu.Unlock()
	return len(w.held)
}

// addHeld records a delivered lease; false means the worker already
// holds it (the daemon re-delivers every held lease on every claim, so
// duplicates are routine, not an error) or already reported this epoch
// of it — a claim response composed while the report was in flight
// re-delivers a lease the daemon has since retired, and evaluating
// that stale copy would burn a whole unit of CPU on a report the
// daemon can only discard. A real reassignment bumps the epoch, so
// genuinely re-leased units still evaluate.
func (w *workerRT) addHeld(l Lease) bool {
	k := l.Job + "\x00" + l.Unit.Key
	w.mu.Lock()
	defer w.mu.Unlock()
	if _, ok := w.held[k]; ok {
		return false
	}
	if e, ok := w.reported[k]; ok && e >= l.Epoch {
		return false
	}
	w.held[k] = struct{}{}
	return true
}

// dropHeld releases reported leases, remembers the epochs they carried
// and pulses the claim loop.
func (w *workerRT) dropHeld(reports []UnitReport) {
	w.mu.Lock()
	for _, r := range reports {
		k := r.Job + "\x00" + r.Key
		delete(w.held, k)
		if len(w.reported) >= reportedCap {
			w.reported = make(map[string]int)
		}
		if e, ok := w.reported[k]; !ok || r.Epoch > e {
			w.reported[k] = r.Epoch
		}
	}
	w.mu.Unlock()
	select {
	case w.slot <- struct{}{}:
	default:
	}
}

// inFlight is the count of evaluations running right now, reported in
// heartbeats and shown by `fpmixctl workers`.
func (w *workerRT) inFlight() int {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.evals
}

func (w *workerRT) evalStarted() {
	w.mu.Lock()
	w.evals++
	w.mu.Unlock()
}

func (w *workerRT) evalDone() {
	w.mu.Lock()
	w.evals--
	w.mu.Unlock()
}

// serve runs one registration epoch: a claim loop prefetching lease
// batches, Parallel evaluator goroutines, and a reporter batching
// verdicts back, all under the given identity until the context ends
// (returns nil) or the daemon forgets the identity (returns ErrGone).
func (w *workerRT) serve(ctx context.Context, reg RegisterResponse) error {
	hctx, hcancel := context.WithCancel(ctx)
	defer hcancel()
	interval := time.Duration(reg.HeartbeatMS) * time.Millisecond
	if interval <= 0 {
		interval = time.Second
	}
	gone := make(chan struct{})
	var goneOnce sync.Once
	markGone := func() { goneOnce.Do(func() { close(gone) }) }
	go w.beat(hctx, reg.ID, interval, gone, markGone)

	w.mu.Lock()
	w.held = make(map[string]struct{})
	w.reported = make(map[string]int)
	w.evals = 0
	w.slot = make(chan struct{}, 1)
	w.mu.Unlock()

	// Buffers are sized so neither evaluators nor the reporter can
	// block the pipeline: at most Batch leases are ever held, so at
	// most Batch entries can sit in pending or results at once.
	pending := make(chan Lease, 2*w.opts.Batch)
	results := make(chan UnitReport, 2*w.opts.Batch+w.opts.Parallel)
	var evals sync.WaitGroup
	for i := 0; i < w.opts.Parallel; i++ {
		evals.Add(1)
		go func() {
			defer evals.Done()
			for l := range pending {
				results <- w.evalOne(ctx, l)
			}
		}()
	}
	repDone := make(chan struct{})
	go func() {
		defer close(repDone)
		w.reportLoop(ctx, reg.ID, results, markGone)
	}()

	err := w.claimLoop(ctx, reg.ID, pending, gone)
	close(pending)
	evals.Wait()
	close(results)
	<-repDone
	return err
}

// claimLoop prefetches leases while evaluations run: whenever the
// worker holds fewer than Batch units it claims the difference,
// otherwise it waits for the reporter to free room. Returns nil on
// context end, ErrGone when the daemon forgot the identity.
func (w *workerRT) claimLoop(ctx context.Context, id string, pending chan<- Lease, gone <-chan struct{}) error {
	streak := 0
	for {
		select {
		case <-ctx.Done():
			return nil
		case <-gone:
			return ErrGone
		default:
		}
		want := w.opts.Batch - w.heldCount()
		if want <= 0 {
			select {
			case <-ctx.Done():
				return nil
			case <-gone:
				return ErrGone
			case <-w.slot:
			case <-time.After(w.opts.Poll):
			}
			continue
		}
		resp, err := w.c.Claim(ctx, id, w.opts.Poll, want)
		if errors.Is(err, ErrGone) {
			return ErrGone
		}
		if ctx.Err() != nil {
			return nil
		}
		if err != nil {
			w.opts.Logf("claim: %v", err)
			streak++
			w.c.Backoff(ctx, backoffAttempt(streak))
			continue
		}
		streak = 0
		if resp.State == "quarantined" {
			// Benched: stop claiming, keep heartbeating so the registry
			// shows the drained worker instead of expiring it.
			sleep(ctx, w.opts.Poll)
			continue
		}
		for _, l := range resp.Leases {
			if w.addHeld(l) {
				pending <- l
			}
		}
	}
}

// reportLoop batches verdicts back to the daemon: it blocks for the
// first result, drains whatever else is ready (up to Batch), and ships
// them in one RPC. After a cancellation the remaining results — the
// Interrupted reports of a graceful drain — flush over a short grace
// context so the daemon requeues the units now rather than waiting out
// the lease expiry.
func (w *workerRT) reportLoop(ctx context.Context, id string, results <-chan UnitReport, markGone func()) {
	for {
		first, ok := <-results
		if !ok {
			return
		}
		batch := []UnitReport{first}
	drain:
		for len(batch) < w.opts.Batch {
			select {
			case r, ok := <-results:
				if !ok {
					w.sendReports(ctx, id, batch, markGone)
					return
				}
				batch = append(batch, r)
			default:
				break drain
			}
		}
		w.sendReports(ctx, id, batch, markGone)
	}
}

// sendReports delivers one batch, retrying past the client's own
// retry budget until the daemon answers — verdicts cost evaluations
// and must not be dropped on a transient outage. A 410 ends the
// identity; after cancellation a single grace-context attempt flushes
// the batch and gives up.
func (w *workerRT) sendReports(ctx context.Context, id string, batch []UnitReport, markGone func()) {
	req := ReportRequest{Worker: id, Reports: batch}
	for streak := 0; ; streak++ {
		rctx := ctx
		var cancel context.CancelFunc
		if ctx.Err() != nil {
			rctx, cancel = context.WithTimeout(context.Background(), 5*time.Second)
		}
		accepted, err := w.c.Report(rctx, req)
		if cancel != nil {
			cancel()
		}
		switch {
		case errors.Is(err, ErrGone):
			markGone()
			w.dropHeld(batch)
			return
		case err == nil:
			for i, r := range batch {
				if i < len(accepted) && !accepted[i] {
					w.opts.Logf("report %s/%s: discarded (duplicate or lost lease)", r.Job, r.Key)
				}
			}
			w.dropHeld(batch)
			return
		}
		w.opts.Logf("report (%d units): %v", len(batch), err)
		if ctx.Err() != nil {
			// The grace attempt failed too; the daemon will requeue the
			// units when their leases expire.
			w.dropHeld(batch)
			return
		}
		w.c.Backoff(ctx, backoffAttempt(streak+1))
	}
}

// beat heartbeats at the daemon-assigned interval, carrying the
// current in-flight evaluation count. A transient failure is ignored —
// the next tick retries, and claims/reports count as beats anyway —
// but a 410 Gone ends the registration epoch.
func (w *workerRT) beat(ctx context.Context, id string, interval time.Duration, gone <-chan struct{}, markGone func()) {
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-gone:
			return
		case <-t.C:
		}
		if _, err := w.c.Heartbeat(ctx, id, w.inFlight()); errors.Is(err, ErrGone) {
			markGone()
			return
		}
	}
}

// evalOne evaluates one leased unit to a report. The report echoes the
// lease's (job, key, epoch) idempotency token; the daemon judges it
// against the worker identity the reporter sends it under.
func (w *workerRT) evalOne(ctx context.Context, l Lease) UnitReport {
	rep := UnitReport{Job: l.Job, Key: l.Unit.Key, Epoch: l.Epoch}
	unit, uerr := l.Unit.Unit()
	switch {
	case uerr != nil:
		rep.Error = uerr.Error()
	case w.sabotageNext():
		rep.Error = "sabotage: injected worker-side fault"
	default:
		runner, err := w.runnerFor(ctx, l.Job)
		if err != nil {
			rep.Error = err.Error()
		} else {
			w.evalStarted()
			v, err := runner.Evaluate(unit)
			w.evalDone()
			if err != nil {
				rep.Error = err.Error()
			} else {
				rep.Verdict = v
			}
		}
	}
	if rep.Error != "" && ctx.Err() != nil {
		// The failure was our own shutdown tearing the stack down, not a
		// broken environment: report an interrupt (requeue, no strike).
		rep.Error = ""
		rep.Verdict = search.Verdict{Interrupted: true}
	}
	return rep
}

// sabotageNext consumes one sabotage token if any remain.
func (w *workerRT) sabotageNext() bool {
	if w.opts.Sabotage <= 0 {
		return false
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.sabotaged >= w.opts.Sabotage {
		return false
	}
	w.sabotaged++
	return true
}

// runnerFor returns the local evaluation stack for a job, building it
// on first use from the daemon-served job spec — the same engine mode
// and chaos wiring the daemon's own in-process runner uses, so remote
// verdicts are indistinguishable from local ones. Runners are cached
// per job for the life of the process (UnitRunner is safe for
// concurrent use, so all Parallel evaluators share one per job); job
// IDs are stable across daemon restarts and specs are immutable, so
// the cache never goes stale.
func (w *workerRT) runnerFor(ctx context.Context, job string) (*search.UnitRunner, error) {
	w.mu.Lock()
	if r, ok := w.runners[job]; ok {
		w.mu.Unlock()
		return r, nil
	}
	w.mu.Unlock()
	spec, err := w.c.JobSpec(ctx, job)
	if err != nil {
		return nil, err
	}
	target, err := spec.Build()
	if err != nil {
		return nil, err
	}
	mode := search.EngineFork
	if spec.NoFork {
		mode = search.EngineOn
	}
	var chaos *faultinject.Injector
	if spec.Chaos != 0 {
		chaos = faultinject.New(spec.Chaos, faultinject.DefaultRates, 0)
	}
	r, err := search.NewUnitRunner(target, search.Options{
		Engine:  mode,
		Context: w.runCtx,
		Chaos:   chaos,
	})
	if err != nil {
		return nil, err
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	if prev, ok := w.runners[job]; ok {
		return prev, nil
	}
	w.runners[job] = r
	return r, nil
}

// sleep waits d or until ctx ends.
func sleep(ctx context.Context, d time.Duration) {
	select {
	case <-time.After(d):
	case <-ctx.Done():
	}
}
