package remote

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"time"

	"fpmix/internal/faultinject"
	"fpmix/internal/jobs"
)

// ErrGone reports that the daemon no longer knows this worker ID (410
// Gone): the daemon restarted, or an operator killed the worker. The
// recovery is always the same — re-register under a fresh identity.
var ErrGone = errors.New("remote: worker identity gone, re-register")

// errInjected marks transport errors manufactured by the network
// chaos injector; they retry exactly like real ones.
type errInjected struct{ kind faultinject.NetKind }

func (e errInjected) Error() string {
	return fmt.Sprintf("remote: injected network fault (%s)", e.kind)
}

// Client is the worker-side transport: JSON POSTs with per-RPC
// deadlines, jittered exponential retry on transport failures, and an
// optional deterministic network-fault injector exercising the
// daemon's idempotency guarantees (dropped responses force duplicate
// deliveries; resets force clean retries; see faultinject.NetKind).
type Client struct {
	base string
	hc   *http.Client
	net  *faultinject.NetInjector

	mu  sync.Mutex
	rng *rand.Rand
	seq int
}

// Transport tuning. Every RPC gets its own deadline; retries back off
// exponentially from retryBase with full jitter, capped at retryCap.
const (
	rpcTimeout  = 10 * time.Second
	maxAttempts = 5
	retryBase   = 100 * time.Millisecond
	retryCap    = 2 * time.Second
)

// NewClient builds a transport against the daemon base URL
// (e.g. http://127.0.0.1:8606). A non-nil injector arms deterministic
// network chaos on every RPC.
func NewClient(base string, net *faultinject.NetInjector) *Client {
	return &Client{
		base: base,
		hc:   &http.Client{},
		net:  net,
		rng:  rand.New(rand.NewSource(time.Now().UnixNano())),
	}
}

// Register joins the fleet, declaring the worker's evaluation
// parallelism, retrying transient failures.
func (c *Client) Register(ctx context.Context, name string, parallel int) (RegisterResponse, error) {
	var resp RegisterResponse
	err := c.post(ctx, "register", name, "/api/v1/fleet/register",
		RegisterRequest{Name: name, Parallel: parallel}, &resp, rpcTimeout)
	return resp, err
}

// Claim long-polls for up to max leases. The RPC deadline covers the
// server's long-poll window plus transport grace.
func (c *Client) Claim(ctx context.Context, worker string, wait time.Duration, max int) (ClaimResponse, error) {
	var resp ClaimResponse
	err := c.post(ctx, "claim", c.nextKey(worker), "/api/v1/fleet/claim",
		ClaimRequest{Worker: worker, WaitMS: wait.Milliseconds(), Max: max}, &resp, wait+rpcTimeout)
	return resp, err
}

// Heartbeat refreshes the worker's lease clock, reporting how many
// evaluations are running right now. One attempt only — a missed beat
// is harmless well under the expiry budget, and the next tick retries
// naturally.
func (c *Client) Heartbeat(ctx context.Context, worker string, inflight int) (HeartbeatResponse, error) {
	var resp HeartbeatResponse
	err := c.once(ctx, "heartbeat", c.nextKey(worker), "/api/v1/fleet/heartbeat",
		HeartbeatRequest{Worker: worker, InFlight: inflight}, &resp, rpcTimeout)
	return resp, err
}

// nextKey derives a fresh chaos key (prefix plus a client-local
// sequence number) so successive claims and heartbeats roll
// independent fault decisions.
func (c *Client) nextKey(prefix string) string {
	c.mu.Lock()
	c.seq++
	k := prefix + "#" + strconv.Itoa(c.seq)
	c.mu.Unlock()
	return k
}

// Report delivers a batch of verdicts (or worker-side errors),
// retrying until the daemon answers. Accepted[i]=false is a normal
// outcome for a unit — a duplicate of a delivery that already landed,
// or a lease lost to reassignment; either way the worker moves on. The
// chaos key is derived from the batch's (job, key) pairs, so retries
// of one logical batch roll one fault decision while distinct batches
// roll independently.
func (c *Client) Report(ctx context.Context, req ReportRequest) ([]bool, error) {
	var b strings.Builder
	for i, r := range req.Reports {
		if i > 0 {
			b.WriteByte('\x01')
		}
		b.WriteString(r.Job)
		b.WriteByte('\x00')
		b.WriteString(r.Key)
	}
	var resp ReportResponse
	err := c.post(ctx, "report", b.String(), "/api/v1/fleet/report",
		req, &resp, rpcTimeout)
	return resp.Accepted, err
}

// Backoff sleeps the client's jittered exponential retry delay before
// the given attempt (none for attempt 0) — exported so the worker
// runtime's register/claim loops share the transport's backoff policy
// instead of hammering a briefly-unreachable daemon in lockstep with
// the rest of the fleet.
func (c *Client) Backoff(ctx context.Context, attempt int) error {
	return c.sleepBackoff(ctx, attempt)
}

// JobSpec fetches the spec of the job a lease belongs to, from which
// the worker builds its local evaluation stack.
func (c *Client) JobSpec(ctx context.Context, job string) (jobs.Spec, error) {
	var spec jobs.Spec
	var lastErr error
	for attempt := 0; attempt < maxAttempts; attempt++ {
		if err := c.sleepBackoff(ctx, attempt); err != nil {
			return spec, err
		}
		rctx, cancel := context.WithTimeout(ctx, rpcTimeout)
		req, err := http.NewRequestWithContext(rctx, "GET", c.base+"/api/v1/fleet/jobs/"+job+"/spec", nil)
		if err != nil {
			cancel()
			return spec, err
		}
		resp, err := c.hc.Do(req)
		if err != nil {
			cancel()
			lastErr = err
			continue
		}
		data, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		cancel()
		if err != nil {
			lastErr = err
			continue
		}
		if resp.StatusCode != http.StatusOK {
			return spec, fmt.Errorf("remote: job spec %s: %s: %s", job, resp.Status, bytes.TrimSpace(data))
		}
		return spec, json.Unmarshal(data, &spec)
	}
	return spec, fmt.Errorf("remote: job spec %s: %w", job, lastErr)
}

// post sends one JSON RPC with retry/backoff and chaos injection. op
// and key feed the injector (only attempt 0 of a pair is ever
// faulted, so the retry loop always reaches a clean attempt).
func (c *Client) post(ctx context.Context, op, key, path string, reqBody, respBody any, deadline time.Duration) error {
	var lastErr error
	for attempt := 0; attempt < maxAttempts; attempt++ {
		if err := c.sleepBackoff(ctx, attempt); err != nil {
			return err
		}
		err := c.attempt(ctx, op, key, attempt, path, reqBody, respBody, deadline)
		if err == nil || errors.Is(err, ErrGone) || errors.Is(err, errStatus) {
			return err
		}
		lastErr = err
	}
	return fmt.Errorf("remote: %s gave up after %d attempts: %w", op, maxAttempts, lastErr)
}

// once sends one JSON RPC without retry (heartbeats).
func (c *Client) once(ctx context.Context, op, key, path string, reqBody, respBody any, deadline time.Duration) error {
	return c.attempt(ctx, op, key, 0, path, reqBody, respBody, deadline)
}

// errStatus marks terminal HTTP-status failures (the server answered;
// retrying the same request cannot help).
var errStatus = errors.New("remote: rpc rejected")

func (c *Client) attempt(ctx context.Context, op, key string, attempt int, path string, reqBody, respBody any, deadline time.Duration) error {
	var dec faultinject.NetDecision
	if c.net != nil {
		dec = c.net.Decide(op, key, attempt)
	}
	switch dec.Kind {
	case faultinject.NetReset:
		// Connection reset before the request lands: the server saw
		// nothing; the retry is the first delivery.
		return errInjected{dec.Kind}
	case faultinject.NetDelay:
		select {
		case <-time.After(dec.Delay):
		case <-ctx.Done():
			return ctx.Err()
		}
	}
	send := func(dst any) error {
		rctx, cancel := context.WithTimeout(ctx, deadline)
		defer cancel()
		data, err := json.Marshal(reqBody)
		if err != nil {
			return err
		}
		req, err := http.NewRequestWithContext(rctx, "POST", c.base+path, bytes.NewReader(data))
		if err != nil {
			return err
		}
		req.Header.Set("Content-Type", "application/json")
		resp, err := c.hc.Do(req)
		if err != nil {
			return err
		}
		body, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			return err
		}
		switch {
		case resp.StatusCode == http.StatusGone:
			return ErrGone
		case resp.StatusCode != http.StatusOK:
			return fmt.Errorf("%w: %s %s: %s", errStatus, op, resp.Status, bytes.TrimSpace(body))
		}
		return json.Unmarshal(body, dst)
	}
	err := send(respBody)
	switch dec.Kind {
	case faultinject.NetDrop:
		// The server processed the request; the response is dropped on
		// the way back. The retry is a duplicate delivery the daemon's
		// idempotency tokens must absorb.
		if err == nil {
			return errInjected{dec.Kind}
		}
		return err
	case faultinject.NetDup:
		// The request is delivered twice; the second copy's outcome is
		// discarded — the daemon must have discarded it too.
		if err == nil {
			send(&struct{}{})
		}
		return err
	}
	return err
}

// sleepBackoff waits the jittered exponential delay before the given
// attempt (none before the first).
func (c *Client) sleepBackoff(ctx context.Context, attempt int) error {
	if attempt == 0 {
		return nil
	}
	d := retryBase << (attempt - 1)
	if d > retryCap {
		d = retryCap
	}
	c.mu.Lock()
	d = time.Duration(c.rng.Int63n(int64(d))) + d/2 // full-ish jitter in [d/2, 3d/2)
	c.mu.Unlock()
	select {
	case <-time.After(d):
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}
