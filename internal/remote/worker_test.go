package remote

import "testing"

// TestStaleLeaseGuard: the daemon re-delivers every held lease on every
// claim, and a claim response composed while a report was in flight can
// re-deliver a lease the daemon has since retired. The worker must
// refuse both the duplicate and the already-reported epoch — but still
// accept a genuine reassignment, which arrives with a higher epoch.
func TestStaleLeaseGuard(t *testing.T) {
	w := &workerRT{
		held:     make(map[string]struct{}),
		reported: make(map[string]int),
		slot:     make(chan struct{}, 1),
	}
	l := Lease{Job: "j0001", Epoch: 3, Unit: WireUnit{Key: "ab"}}
	if !w.addHeld(l) {
		t.Fatal("fresh lease refused")
	}
	if w.addHeld(l) {
		t.Fatal("already-held lease accepted twice")
	}
	w.dropHeld([]UnitReport{{Job: "j0001", Key: "ab", Epoch: 3}})
	if n := w.heldCount(); n != 0 {
		t.Fatalf("heldCount = %d after dropHeld, want 0", n)
	}
	if w.addHeld(l) {
		t.Fatal("stale re-delivery of a reported epoch accepted")
	}
	l.Epoch = 4
	if !w.addHeld(l) {
		t.Fatal("re-leased unit at a higher epoch refused")
	}
}
