// Package remote is the out-of-process worker side of the fpmixd
// fleet: the wire protocol a worker speaks to the daemon, a transport
// client hardened against real networks (per-RPC deadlines, jittered
// exponential retry, deterministic chaos injection), and the worker
// runtime cmd/fpmixworker wraps.
//
// The protocol is four idempotent JSON-over-HTTP RPCs against the
// daemon's /api/v1/fleet endpoints:
//
//	register   join the fleet, declaring evaluation parallelism;
//	           returns the worker ID and the heartbeat interval /
//	           expiry budget to respect
//	claim      long-poll for a batch of evaluation units; always
//	           re-delivers every lease the worker still holds (same
//	           epochs) before topping up, so claim responses lost on
//	           the wire can never strand or double-assign a unit
//	heartbeat  refresh the lease clock, carrying the worker's current
//	           in-flight evaluation count; returns the worker state so
//	           a quarantined worker learns to drain
//	report     deliver a batch of verdicts or worker-side errors; each
//	           unit is accepted at most once per (owner, epoch) token,
//	           judged independently of its batchmates
//
// plus GET /api/v1/fleet/jobs/{id}/spec, from which the worker builds
// the job's evaluation stack (search.UnitRunner) in its own address
// space. Every failure-domain decision lives on the daemon: lease
// expiry uses only the daemon's clock, and duplicate or stale
// deliveries die against the per-unit owner+epoch idempotency tokens —
// batching changes how many units ride one RPC, never the tokens.
package remote

import (
	"encoding/hex"
	"fmt"

	"fpmix/internal/config"
	"fpmix/internal/search"
)

// RegisterRequest asks the daemon for a fleet identity. Parallel
// declares how many evaluations the worker runs concurrently; the
// daemon sizes lease grants to that capacity.
type RegisterRequest struct {
	Name     string `json:"name"`
	Parallel int    `json:"parallel,omitempty"`
}

// RegisterResponse carries the assigned worker ID and the liveness
// contract: heartbeat at least every HeartbeatMS; silence past
// ExpiryMS (measured on the daemon's clock) retires the worker.
type RegisterResponse struct {
	ID          string `json:"id"`
	HeartbeatMS int64  `json:"heartbeat_ms"`
	ExpiryMS    int64  `json:"expiry_ms"`
}

// ClaimRequest long-polls for up to Max units (the worker's free batch
// slots). The daemon may return fewer — including only re-deliveries
// of leases the worker already holds — and never more than the
// capacity it computed from the worker's declared parallelism.
type ClaimRequest struct {
	Worker string `json:"worker"`
	WaitMS int64  `json:"wait_ms"`
	Max    int    `json:"max,omitempty"`
}

// Lease is one evaluation unit leased to this worker. Epoch, together
// with the worker ID, is the idempotency token a report must echo.
type Lease struct {
	Job   string   `json:"job"`
	Epoch int      `json:"epoch"`
	Unit  WireUnit `json:"unit"`
}

// WireUnit is search.EvalUnit as it crosses the wire. A unit key is
// the raw byte image of its sorted address set — generally not valid
// UTF-8, which encoding/json silently coerces to U+FFFD, corrupting
// the idempotency token and making every report of the unit
// undeliverable — so the key travels hex-encoded.
type WireUnit struct {
	Key      string      `json:"key"` // hex-encoded search.EvalUnit.Key
	Label    string      `json:"label,omitempty"`
	Kind     config.Kind `json:"kind"`
	Addrs    []uint64    `json:"addrs,omitempty"`
	Final    bool        `json:"final,omitempty"`
	ForkSite uint64      `json:"fork_site,omitempty"`
	Weight   int         `json:"weight,omitempty"`
}

// ToWire hex-armors a unit for JSON transport.
func ToWire(u search.EvalUnit) WireUnit {
	return WireUnit{
		Key:      hex.EncodeToString([]byte(u.Key)),
		Label:    u.Label,
		Kind:     u.Kind,
		Addrs:    u.Addrs,
		Final:    u.Final,
		ForkSite: u.ForkSite,
		Weight:   u.Weight,
	}
}

// Unit restores the search-side unit, decoding the hex key.
func (wu WireUnit) Unit() (search.EvalUnit, error) {
	key, err := hex.DecodeString(wu.Key)
	if err != nil {
		return search.EvalUnit{}, fmt.Errorf("remote: undecodable unit key %q: %v", wu.Key, err)
	}
	return search.EvalUnit{
		Key:      string(key),
		Label:    wu.Label,
		Kind:     wu.Kind,
		Addrs:    wu.Addrs,
		Final:    wu.Final,
		ForkSite: wu.ForkSite,
		Weight:   wu.Weight,
	}, nil
}

// ClaimResponse: the worker's state plus every lease it now holds —
// re-deliveries first, then units newly assigned by this claim. Empty
// Leases with state "idle" means the long-poll window elapsed with no
// work; "quarantined" tells the worker to drain.
type ClaimResponse struct {
	State  string  `json:"state"`
	Leases []Lease `json:"leases,omitempty"`
}

// HeartbeatRequest refreshes the worker's lease clock and reports how
// many evaluations the worker is running right now, so the registry
// shows live saturation and the daemon can spot a wedged worker that
// still beats.
type HeartbeatRequest struct {
	Worker   string `json:"worker"`
	InFlight int    `json:"in_flight"`
}

// HeartbeatResponse reports the worker's registry state.
type HeartbeatResponse struct {
	State string `json:"state"`
}

// UnitReport is one unit's outcome inside a report batch: a verdict,
// or — when Error is non-empty — the worker-side failure that
// prevented one (the daemon requeues the unit and counts the strike
// toward quarantine). Key echoes the lease's hex-encoded unit key
// verbatim.
type UnitReport struct {
	Job     string         `json:"job"`
	Key     string         `json:"key"`
	Epoch   int            `json:"epoch"`
	Verdict search.Verdict `json:"verdict"`
	Error   string         `json:"error,omitempty"`
}

// ReportRequest delivers a batch of unit outcomes. Each entry carries
// its own idempotency token and is judged independently: a duplicate
// in position i never poisons position i+1.
type ReportRequest struct {
	Worker  string       `json:"worker"`
	Reports []UnitReport `json:"reports"`
}

// ReportResponse: Accepted[i] answers Reports[i]; false means that
// delivery was a duplicate or its lease was lost (both fine — the unit
// is in other hands).
type ReportResponse struct {
	Accepted []bool `json:"accepted"`
}
