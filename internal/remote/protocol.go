// Package remote is the out-of-process worker side of the fpmixd
// fleet: the wire protocol a worker speaks to the daemon, a transport
// client hardened against real networks (per-RPC deadlines, jittered
// exponential retry, deterministic chaos injection), and the worker
// runtime cmd/fpmixworker wraps.
//
// The protocol is four idempotent JSON-over-HTTP RPCs against the
// daemon's /api/v1/fleet endpoints:
//
//	register   join the fleet; returns the worker ID and the
//	           heartbeat interval / expiry budget to respect
//	claim      long-poll for an evaluation unit; re-delivers the
//	           worker's current lease (same epoch) if a previous
//	           claim response was lost
//	heartbeat  refresh the lease clock; returns the worker state so
//	           a quarantined worker learns to drain
//	report     deliver a verdict or a worker-side error; accepted at
//	           most once per (owner, epoch) token
//
// plus GET /api/v1/fleet/jobs/{id}/spec, from which the worker builds
// the job's evaluation stack (search.UnitRunner) in its own address
// space. Every failure-domain decision lives on the daemon: lease
// expiry uses only the daemon's clock, and duplicate or stale
// deliveries die against the owner+epoch idempotency tokens.
package remote

import (
	"encoding/hex"
	"fmt"

	"fpmix/internal/config"
	"fpmix/internal/search"
)

// RegisterRequest asks the daemon for a fleet identity.
type RegisterRequest struct {
	Name string `json:"name"`
}

// RegisterResponse carries the assigned worker ID and the liveness
// contract: heartbeat at least every HeartbeatMS; silence past
// ExpiryMS (measured on the daemon's clock) retires the worker.
type RegisterResponse struct {
	ID          string `json:"id"`
	HeartbeatMS int64  `json:"heartbeat_ms"`
	ExpiryMS    int64  `json:"expiry_ms"`
}

// ClaimRequest long-polls for work.
type ClaimRequest struct {
	Worker string `json:"worker"`
	WaitMS int64  `json:"wait_ms"`
}

// Lease is one evaluation unit leased to this worker. Epoch, together
// with the worker ID, is the idempotency token a Report must echo.
type Lease struct {
	Job   string   `json:"job"`
	Epoch int      `json:"epoch"`
	Unit  WireUnit `json:"unit"`
}

// WireUnit is search.EvalUnit as it crosses the wire. A unit key is
// the raw byte image of its sorted address set — generally not valid
// UTF-8, which encoding/json silently coerces to U+FFFD, corrupting
// the idempotency token and making every report of the unit
// undeliverable — so the key travels hex-encoded.
type WireUnit struct {
	Key   string      `json:"key"` // hex-encoded search.EvalUnit.Key
	Label string      `json:"label,omitempty"`
	Kind  config.Kind `json:"kind"`
	Addrs []uint64    `json:"addrs,omitempty"`
	Final bool        `json:"final,omitempty"`
}

// ToWire hex-armors a unit for JSON transport.
func ToWire(u search.EvalUnit) WireUnit {
	return WireUnit{
		Key:   hex.EncodeToString([]byte(u.Key)),
		Label: u.Label,
		Kind:  u.Kind,
		Addrs: u.Addrs,
		Final: u.Final,
	}
}

// Unit restores the search-side unit, decoding the hex key.
func (wu WireUnit) Unit() (search.EvalUnit, error) {
	key, err := hex.DecodeString(wu.Key)
	if err != nil {
		return search.EvalUnit{}, fmt.Errorf("remote: undecodable unit key %q: %v", wu.Key, err)
	}
	return search.EvalUnit{
		Key:   string(key),
		Label: wu.Label,
		Kind:  wu.Kind,
		Addrs: wu.Addrs,
		Final: wu.Final,
	}, nil
}

// ClaimResponse: a lease when work was available, else just the
// worker's state ("idle" = poll again, "quarantined" = drain).
type ClaimResponse struct {
	State string `json:"state"`
	Lease *Lease `json:"lease,omitempty"`
}

// HeartbeatRequest refreshes the worker's lease clock.
type HeartbeatRequest struct {
	Worker string `json:"worker"`
}

// HeartbeatResponse reports the worker's registry state.
type HeartbeatResponse struct {
	State string `json:"state"`
}

// ReportRequest delivers the verdict for a leased unit — or, when
// Error is non-empty, the worker-side failure that prevented one (the
// daemon requeues the unit and counts the strike toward quarantine).
// Key echoes the lease's hex-encoded unit key verbatim.
type ReportRequest struct {
	Worker  string         `json:"worker"`
	Job     string         `json:"job"`
	Key     string         `json:"key"`
	Epoch   int            `json:"epoch"`
	Verdict search.Verdict `json:"verdict"`
	Error   string         `json:"error,omitempty"`
}

// ReportResponse: Accepted is false when the delivery was a duplicate
// or the lease was lost (both fine — the unit is in other hands).
type ReportResponse struct {
	Accepted bool `json:"accepted"`
}
