package remote

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"fpmix/internal/faultinject"
)

// countingServer answers every fleet POST with the given payload and
// counts deliveries per path.
func countingServer(t *testing.T, payload any) (*httptest.Server, *atomic.Int64) {
	t.Helper()
	var hits atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hits.Add(1)
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(payload)
	}))
	t.Cleanup(ts.Close)
	return ts, &hits
}

// TestClientResetRetries: a NetReset faults the attempt before the
// request lands — the server must see exactly one (clean, retried)
// delivery and the call succeeds.
func TestClientResetRetries(t *testing.T) {
	ts, hits := countingServer(t, ReportResponse{Accepted: []bool{true}})
	c := NewClient(ts.URL, faultinject.NewNet(1, faultinject.NetRates{Reset: 1}, 0))
	acc, err := c.Report(context.Background(), ReportRequest{Worker: "r1",
		Reports: []UnitReport{{Job: "j1", Key: "6b", Epoch: 1}}})
	if err != nil || len(acc) != 1 || !acc[0] {
		t.Fatalf("Report: accepted=%v err=%v", acc, err)
	}
	if got := hits.Load(); got != 1 {
		t.Fatalf("server saw %d deliveries, want 1 (reset never reaches it)", got)
	}
	st := c.net.Stats()
	if st.Resets != 1 {
		t.Fatalf("stats %+v, want exactly one reset", st)
	}
}

// TestClientDropDuplicates: a NetDrop loses the response after the
// server processed the request — the retry is a duplicate delivery, so
// the server sees two.
func TestClientDropDuplicates(t *testing.T) {
	ts, hits := countingServer(t, ReportResponse{Accepted: []bool{true}})
	c := NewClient(ts.URL, faultinject.NewNet(1, faultinject.NetRates{Drop: 1}, 0))
	acc, err := c.Report(context.Background(), ReportRequest{Worker: "r1",
		Reports: []UnitReport{{Job: "j1", Key: "6b", Epoch: 1}}})
	if err != nil || len(acc) != 1 || !acc[0] {
		t.Fatalf("Report: accepted=%v err=%v", acc, err)
	}
	if got := hits.Load(); got != 2 {
		t.Fatalf("server saw %d deliveries, want 2 (original + retry)", got)
	}
}

// TestClientDupDelivers: a NetDup sends the request twice back to
// back; the call succeeds with the first response and the duplicate's
// response is discarded (it must not overwrite the decoded result).
func TestClientDupDelivers(t *testing.T) {
	var hits atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		n := hits.Add(1)
		// First delivery accepted; the duplicate is rejected the way the
		// daemon's idempotency tokens would reject it.
		json.NewEncoder(w).Encode(ReportResponse{Accepted: []bool{n == 1}})
	}))
	defer ts.Close()
	c := NewClient(ts.URL, faultinject.NewNet(1, faultinject.NetRates{Dup: 1}, 0))
	acc, err := c.Report(context.Background(), ReportRequest{Worker: "r1",
		Reports: []UnitReport{{Job: "j1", Key: "6b", Epoch: 1}}})
	if err != nil || len(acc) != 1 || !acc[0] {
		t.Fatalf("Report: accepted=%v err=%v, want first response to win", acc, err)
	}
	if got := hits.Load(); got != 2 {
		t.Fatalf("server saw %d deliveries, want 2", got)
	}
}

// TestClientGoneTerminal: 410 maps to ErrGone immediately — no retry,
// the worker must re-register instead.
func TestClientGoneTerminal(t *testing.T) {
	var hits atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hits.Add(1)
		w.WriteHeader(http.StatusGone)
		json.NewEncoder(w).Encode(map[string]string{"error": "unknown worker"})
	}))
	defer ts.Close()
	c := NewClient(ts.URL, nil)
	if _, err := c.Heartbeat(context.Background(), "r9", 0); !errors.Is(err, ErrGone) {
		t.Fatalf("Heartbeat err = %v, want ErrGone", err)
	}
	if _, err := c.Report(context.Background(), ReportRequest{Worker: "r9"}); !errors.Is(err, ErrGone) {
		t.Fatalf("Report err = %v, want ErrGone", err)
	}
	if got := hits.Load(); got != 2 {
		t.Fatalf("server saw %d deliveries, want 2 (no retries on 410)", got)
	}
}

// TestClientRejectionTerminal: a non-200 answer other than 410 is a
// server-side rejection — retrying cannot help, one delivery only.
func TestClientRejectionTerminal(t *testing.T) {
	var hits atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hits.Add(1)
		w.WriteHeader(http.StatusBadRequest)
	}))
	defer ts.Close()
	c := NewClient(ts.URL, nil)
	if _, err := c.Register(context.Background(), "w", 1); err == nil {
		t.Fatal("Register against 400 succeeded")
	}
	if got := hits.Load(); got != 1 {
		t.Fatalf("server saw %d deliveries, want 1", got)
	}
}

// TestClientTransportRetry: real connection failures (server down for
// the first attempts) retry with backoff until the server answers.
func TestClientTransportRetry(t *testing.T) {
	ts, _ := countingServer(t, RegisterResponse{ID: "r1", HeartbeatMS: 100, ExpiryMS: 800})
	// Point at a dead port first: every attempt fails, the call errors
	// out after maxAttempts without hanging.
	dead := NewClient("http://127.0.0.1:1", nil)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if _, err := dead.Register(ctx, "w", 1); err == nil {
		t.Fatal("Register against a dead port succeeded")
	}
	// Against a live server the same call lands.
	live := NewClient(ts.URL, nil)
	resp, err := live.Register(context.Background(), "w", 1)
	if err != nil || resp.ID != "r1" {
		t.Fatalf("Register: %+v err=%v", resp, err)
	}
}

// TestClientDelayStalls: a NetDelay decision stalls the attempt but
// the RPC still lands exactly once.
func TestClientDelayStalls(t *testing.T) {
	ts, hits := countingServer(t, HeartbeatResponse{State: "idle"})
	c := NewClient(ts.URL, faultinject.NewNet(1, faultinject.NetRates{Delay: 1}, 30*time.Millisecond))
	start := time.Now()
	if _, err := c.Heartbeat(context.Background(), "r1", 2); err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed < 30*time.Millisecond {
		t.Fatalf("delayed heartbeat returned in %v, want ≥30ms", elapsed)
	}
	if got := hits.Load(); got != 1 {
		t.Fatalf("server saw %d deliveries, want 1", got)
	}
}
