package remote

import (
	"encoding/json"
	"testing"

	"fpmix/internal/search"
)

// TestWireUnitBinaryKeyRoundTrip pins the hex armor: unit keys are raw
// address bytes (almost never valid UTF-8), and a plain JSON string
// would silently coerce them to U+FFFD — corrupting the idempotency
// token so no report of the unit could ever be accepted. The wire form
// must round-trip any byte string exactly.
func TestWireUnitBinaryKeyRoundTrip(t *testing.T) {
	raw := string([]byte{0x00, 0x80, 0xFF, 0xC3, 0x28, 0x10, 0xED, 0xA0})
	in := search.EvalUnit{Key: raw, Label: "piece 3", Addrs: []uint64{1 << 40, 7}, Final: true}
	b, err := json.Marshal(Lease{Job: "j1", Epoch: 3, Unit: ToWire(in)})
	if err != nil {
		t.Fatal(err)
	}
	var l Lease
	if err := json.Unmarshal(b, &l); err != nil {
		t.Fatal(err)
	}
	got, err := l.Unit.Unit()
	if err != nil {
		t.Fatal(err)
	}
	if got.Key != raw {
		t.Fatalf("key corrupted over the wire: %x != %x", got.Key, raw)
	}
	if got.Label != in.Label || got.Final != in.Final || len(got.Addrs) != 2 {
		t.Fatalf("unit fields lost: %+v", got)
	}
}

// TestWireUnitBadHex: a corrupted wire key is a decode error, not a
// silently wrong unit.
func TestWireUnitBadHex(t *testing.T) {
	if _, err := (WireUnit{Key: "zz"}).Unit(); err == nil {
		t.Fatal("bad hex decoded without error")
	}
}
