// Package verify provides the verification routines the search and
// benchmark harnesses plug into the analysis: the paper's system accepts a
// user-provided pass/fail routine per application (§2), typically "outputs
// within a tolerance of the trusted double-precision run" or a
// program-reported error metric under a threshold.
package verify

import (
	"math"

	"fpmix/internal/replace"
	"fpmix/internal/vm"
)

// Decode converts program outputs to float64s, upcasting any in-place
// replaced values — the view an instrumented print routine produces.
func Decode(out []vm.OutVal) []float64 {
	vals := make([]float64, len(out))
	for i, o := range out {
		switch o.Kind {
		case vm.OutF32:
			vals[i] = float64(o.F32())
		case vm.OutI64:
			vals[i] = float64(int64(o.Bits))
		default:
			vals[i] = replace.Value(o.Bits)
		}
	}
	return vals
}

// MaxRelErr returns the maximum elementwise relative error of got against
// ref (with |ref| floored at 1 to avoid blowup near zero). NaNs compare as
// infinite error.
func MaxRelErr(ref, got []float64) float64 {
	if len(ref) != len(got) {
		return math.Inf(1)
	}
	worst := 0.0
	for i := range ref {
		if math.IsNaN(got[i]) {
			return math.Inf(1)
		}
		scale := math.Max(1, math.Abs(ref[i]))
		if e := math.Abs(got[i]-ref[i]) / scale; e > worst {
			worst = e
		}
	}
	return worst
}

// L2Diff returns the Euclidean norm of (got - ref).
func L2Diff(ref, got []float64) float64 {
	if len(ref) != len(got) {
		return math.Inf(1)
	}
	s := 0.0
	for i := range ref {
		d := got[i] - ref[i]
		s += d * d
	}
	return math.Sqrt(s)
}

// Tolerance builds a verification routine accepting outputs whose maximum
// relative error against ref stays within tol.
func Tolerance(ref []float64, tol float64) func([]vm.OutVal) bool {
	r := append([]float64(nil), ref...)
	return func(out []vm.OutVal) bool {
		return MaxRelErr(r, Decode(out)) <= tol
	}
}

// BitExact builds a verification routine requiring outputs identical to
// ref at the bit level (after upcasting replaced values).
func BitExact(ref []float64) func([]vm.OutVal) bool {
	r := append([]float64(nil), ref...)
	return func(out []vm.OutVal) bool {
		got := Decode(out)
		if len(got) != len(r) {
			return false
		}
		for i := range r {
			if math.Float64bits(got[i]) != math.Float64bits(r[i]) {
				return false
			}
		}
		return true
	}
}

// ErrorBelow builds a verification routine for programs that report their
// own error metric: output index idx must be below threshold (the SuperLU
// driver style, §3.3).
func ErrorBelow(idx int, threshold float64) func([]vm.OutVal) bool {
	return func(out []vm.OutVal) bool {
		if idx >= len(out) {
			return false
		}
		e := Decode(out)[idx]
		return !math.IsNaN(e) && e >= 0 && e < threshold
	}
}
