package verify

import (
	"math"
	"testing"

	"fpmix/internal/replace"
	"fpmix/internal/vm"
)

func outF64(v float64) vm.OutVal {
	return vm.OutVal{Kind: vm.OutF64, Bits: math.Float64bits(v)}
}

func outReplaced(v float32) vm.OutVal {
	return vm.OutVal{Kind: vm.OutF64, Bits: replace.Encode(v)}
}

func TestDecode(t *testing.T) {
	out := []vm.OutVal{
		outF64(1.5),
		outReplaced(2.5),
		{Kind: vm.OutF32, Bits: uint64(math.Float32bits(3.5))},
		{Kind: vm.OutI64, Bits: uint64(7)},
	}
	got := Decode(out)
	want := []float64{1.5, 2.5, 3.5, 7}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("decode[%d] = %v, want %v", i, got[i], want[i])
		}
	}
	minus3 := int64(-3)
	neg := []vm.OutVal{{Kind: vm.OutI64, Bits: uint64(minus3)}}
	if Decode(neg)[0] != -3 {
		t.Error("negative int decode")
	}
}

func TestMaxRelErr(t *testing.T) {
	if e := MaxRelErr([]float64{100, 2}, []float64{101, 2}); math.Abs(e-0.01) > 1e-12 {
		t.Errorf("rel err = %v", e)
	}
	// Small magnitudes floored at 1.
	if e := MaxRelErr([]float64{1e-20}, []float64{2e-20}); e > 1e-19 {
		t.Errorf("near-zero rel err = %v", e)
	}
	if !math.IsInf(MaxRelErr([]float64{1}, []float64{math.NaN()}), 1) {
		t.Error("NaN should be infinite error")
	}
	if !math.IsInf(MaxRelErr([]float64{1, 2}, []float64{1}), 1) {
		t.Error("length mismatch should be infinite error")
	}
	if MaxRelErr(nil, nil) != 0 {
		t.Error("empty should be zero")
	}
}

func TestL2Diff(t *testing.T) {
	if d := L2Diff([]float64{0, 0}, []float64{3, 4}); d != 5 {
		t.Errorf("L2 = %v", d)
	}
	if !math.IsInf(L2Diff([]float64{1}, nil), 1) {
		t.Error("length mismatch")
	}
}

func TestTolerance(t *testing.T) {
	v := Tolerance([]float64{10, 20}, 1e-3)
	if !v([]vm.OutVal{outF64(10.001), outF64(20)}) {
		t.Error("within tolerance rejected")
	}
	if v([]vm.OutVal{outF64(10.5), outF64(20)}) {
		t.Error("out of tolerance accepted")
	}
	// Replaced outputs decode before comparison.
	if !v([]vm.OutVal{outReplaced(10.0), outReplaced(20.0)}) {
		t.Error("replaced outputs rejected")
	}
}

func TestBitExact(t *testing.T) {
	v := BitExact([]float64{1.5})
	if !v([]vm.OutVal{outF64(1.5)}) {
		t.Error("identical rejected")
	}
	if v([]vm.OutVal{outF64(1.5 + 1e-16)}) {
		// 1.5+1e-16 rounds to 1.5 in float64, so craft a truly different value.
		t.Log("rounding collapsed; skip")
	}
	if v([]vm.OutVal{outF64(1.6)}) {
		t.Error("different accepted")
	}
	if v([]vm.OutVal{outF64(1.5), outF64(2)}) {
		t.Error("length mismatch accepted")
	}
}

func TestErrorBelow(t *testing.T) {
	v := ErrorBelow(0, 1e-4)
	if !v([]vm.OutVal{outF64(5e-5)}) {
		t.Error("below threshold rejected")
	}
	if v([]vm.OutVal{outF64(2e-4)}) {
		t.Error("above threshold accepted")
	}
	if v([]vm.OutVal{outF64(math.NaN())}) {
		t.Error("NaN accepted")
	}
	if v([]vm.OutVal{outF64(-1)}) {
		t.Error("negative error metric accepted")
	}
	if v(nil) {
		t.Error("missing output accepted")
	}
}
