package mm

import (
	"math"
	"testing"
	"testing/quick"
)

func TestLCGDeterministic(t *testing.T) {
	a, b := NewLCG(7), NewLCG(7)
	for i := 0; i < 100; i++ {
		if a.Next() != b.Next() {
			t.Fatal("same seed diverged")
		}
	}
	if NewLCG(1).Next() == NewLCG(2).Next() {
		t.Error("different seeds should differ")
	}
	g := NewLCG(0)
	if g.state == 0 {
		t.Error("zero seed not remapped")
	}
}

func TestLCGRanges(t *testing.T) {
	g := NewLCG(3)
	for i := 0; i < 1000; i++ {
		if f := g.Float64(); f < 0 || f >= 1 {
			t.Fatalf("Float64 = %v", f)
		}
		if n := g.Intn(17); n < 0 || n >= 17 {
			t.Fatalf("Intn = %d", n)
		}
	}
	if g.Intn(0) != 0 {
		t.Error("Intn(0) should be 0")
	}
}

func TestRandomSPDStructure(t *testing.T) {
	m := RandomSPD(50, 6, 42)
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	d := m.Dense()
	// Symmetric.
	for i := 0; i < m.N; i++ {
		for j := 0; j < m.N; j++ {
			if d[i*m.N+j] != d[j*m.N+i] {
				t.Fatalf("not symmetric at (%d,%d)", i, j)
			}
		}
	}
	// Strictly diagonally dominant (implies SPD for symmetric).
	for i := 0; i < m.N; i++ {
		off := 0.0
		for j := 0; j < m.N; j++ {
			if j != i {
				off += math.Abs(d[i*m.N+j])
			}
		}
		if d[i*m.N+i] <= off {
			t.Fatalf("row %d not diagonally dominant", i)
		}
	}
}

func TestRandomSPDDeterministic(t *testing.T) {
	a := RandomSPD(30, 4, 9)
	b := RandomSPD(30, 4, 9)
	if a.NNZ() != b.NNZ() {
		t.Fatal("same seed, different nnz")
	}
	for i := range a.Val {
		if a.Val[i] != b.Val[i] || a.Col[i] != b.Col[i] {
			t.Fatal("same seed, different matrix")
		}
	}
}

func TestMemplusStructure(t *testing.T) {
	m := Memplus(80, 5)
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	d := m.Dense()
	// Unsymmetric (with overwhelming probability).
	sym := true
	for i := 0; i < m.N && sym; i++ {
		for j := 0; j < i; j++ {
			if d[i*m.N+j] != d[j*m.N+i] {
				sym = false
				break
			}
		}
	}
	if sym {
		t.Error("memplus-like matrix should be unsymmetric")
	}
	// Nonzero diagonal everywhere.
	for i := 0; i < m.N; i++ {
		if d[i*m.N+i] == 0 {
			t.Errorf("zero diagonal at %d", i)
		}
	}
	// Entry magnitudes span orders of magnitude.
	min, max := math.Inf(1), 0.0
	for _, v := range m.Val {
		a := math.Abs(v)
		if a == 0 {
			continue
		}
		min = math.Min(min, a)
		max = math.Max(max, a)
	}
	if max/min < 100 {
		t.Errorf("dynamic range too small: %v", max/min)
	}
}

func TestMatVec(t *testing.T) {
	m := Poisson1D(4)
	x := []float64{1, 2, 3, 4}
	y := make([]float64, 4)
	m.MatVec(x, y)
	want := []float64{0, 0, 0, 5} // [2-2, -1+4-3, -2+6-4, -3+8]
	for i := range want {
		if y[i] != want[i] {
			t.Errorf("y[%d] = %v, want %v", i, y[i], want[i])
		}
	}
}

func TestValidateCatchesCorruption(t *testing.T) {
	m := Poisson1D(4)
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := *m
	bad.RowPtr = bad.RowPtr[:3]
	if bad.Validate() == nil {
		t.Error("short rowptr accepted")
	}
	bad2 := Poisson1D(4)
	bad2.Col[0] = 99
	if bad2.Validate() == nil {
		t.Error("column out of range accepted")
	}
	bad3 := Poisson1D(4)
	bad3.Col[1], bad3.Col[0] = bad3.Col[0], bad3.Col[1]
	if bad3.Validate() == nil {
		t.Error("non-increasing columns accepted")
	}
}

func TestDenseMatchesMatVecQuick(t *testing.T) {
	m := RandomSPD(20, 4, 11)
	d := m.Dense()
	f := func(seed uint64) bool {
		g := NewLCG(seed)
		x := make([]float64, m.N)
		for i := range x {
			x[i] = g.Float64()*2 - 1
		}
		y := make([]float64, m.N)
		m.MatVec(x, y)
		for i := 0; i < m.N; i++ {
			s := 0.0
			for j := 0; j < m.N; j++ {
				s += d[i*m.N+j] * x[j]
			}
			if math.Abs(s-y[i]) > 1e-12 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}
