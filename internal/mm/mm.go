// Package mm provides the matrix substrate for the linear-algebra
// workloads: CSR sparse matrices, dense helpers, and deterministic
// generators for the matrix classes the paper's evaluation uses — a
// random sparse symmetric positive-definite class for the CG benchmark
// and a "memplus-like" unsymmetric memory-circuit class standing in for
// the Matrix Market data set used in the SuperLU experiments (§3.3).
package mm

import (
	"fmt"
	"math"
	"sort"
)

// LCG is a small deterministic linear congruential generator used by the
// matrix generators (so every build reproduces identical matrices).
type LCG struct{ state uint64 }

// NewLCG seeds a generator.
func NewLCG(seed uint64) *LCG {
	if seed == 0 {
		seed = 0x9E3779B97F4A7C15
	}
	return &LCG{state: seed}
}

// Next returns the next raw 64-bit value.
func (g *LCG) Next() uint64 {
	g.state = g.state*6364136223846793005 + 1442695040888963407
	return g.state
}

// Float64 returns a uniform value in [0, 1).
func (g *LCG) Float64() float64 {
	return float64(g.Next()>>11) / float64(1<<53)
}

// Intn returns a uniform value in [0, n).
func (g *LCG) Intn(n int) int {
	if n <= 0 {
		return 0
	}
	return int(g.Next() % uint64(n))
}

// CSR is a sparse matrix in compressed sparse row form.
type CSR struct {
	N      int
	RowPtr []int // length N+1
	Col    []int
	Val    []float64
}

// NNZ returns the number of stored entries.
func (m *CSR) NNZ() int { return len(m.Val) }

// Validate checks structural invariants.
func (m *CSR) Validate() error {
	if len(m.RowPtr) != m.N+1 {
		return fmt.Errorf("mm: rowptr length %d != n+1", len(m.RowPtr))
	}
	if m.RowPtr[0] != 0 || m.RowPtr[m.N] != len(m.Val) || len(m.Col) != len(m.Val) {
		return fmt.Errorf("mm: inconsistent CSR arrays")
	}
	for i := 0; i < m.N; i++ {
		if m.RowPtr[i] > m.RowPtr[i+1] {
			return fmt.Errorf("mm: row %d has negative extent", i)
		}
		for k := m.RowPtr[i]; k < m.RowPtr[i+1]; k++ {
			if m.Col[k] < 0 || m.Col[k] >= m.N {
				return fmt.Errorf("mm: row %d col %d out of range", i, m.Col[k])
			}
			if k > m.RowPtr[i] && m.Col[k] <= m.Col[k-1] {
				return fmt.Errorf("mm: row %d columns not strictly increasing", i)
			}
		}
	}
	return nil
}

// MatVec computes y = A x in float64 (host-side reference).
func (m *CSR) MatVec(x, y []float64) {
	for i := 0; i < m.N; i++ {
		s := 0.0
		for k := m.RowPtr[i]; k < m.RowPtr[i+1]; k++ {
			s += m.Val[k] * x[m.Col[k]]
		}
		y[i] = s
	}
}

// Dense expands the matrix to a row-major dense form.
func (m *CSR) Dense() []float64 {
	d := make([]float64, m.N*m.N)
	for i := 0; i < m.N; i++ {
		for k := m.RowPtr[i]; k < m.RowPtr[i+1]; k++ {
			d[i*m.N+m.Col[k]] = m.Val[k]
		}
	}
	return d
}

// RandomSPD generates a random sparse symmetric positive-definite matrix
// with about nnzPerRow off-diagonal entries per row, in the style of the
// NAS CG synthetic matrix: random small off-diagonals with a dominant
// positive diagonal.
func RandomSPD(n, nnzPerRow int, seed uint64) *CSR {
	g := NewLCG(seed)
	// Collect symmetric off-diagonal entries.
	type ent struct {
		j int
		v float64
	}
	rows := make([]map[int]float64, n)
	for i := range rows {
		rows[i] = make(map[int]float64)
	}
	for i := 0; i < n; i++ {
		for k := 0; k < nnzPerRow/2; k++ {
			j := g.Intn(n)
			if j == i {
				continue
			}
			v := 0.5 - g.Float64() // in (-0.5, 0.5]
			rows[i][j] = v
			rows[j][i] = v
		}
	}
	m := &CSR{N: n, RowPtr: make([]int, n+1)}
	for i := 0; i < n; i++ {
		// Iterate columns in sorted order: map order is randomized, and
		// the diagonal's floating-point accumulation must be reproducible.
		cols := make([]ent, 0, len(rows[i])+1)
		for j := range rows[i] {
			cols = append(cols, ent{j, rows[i][j]})
		}
		sort.Slice(cols, func(a, b int) bool { return cols[a].j < cols[b].j })
		// Diagonal dominance ensures SPD.
		sum := 0.0
		for _, e := range cols {
			sum += math.Abs(e.v)
		}
		cols = append(cols, ent{i, sum + 1.0 + g.Float64()})
		sort.Slice(cols, func(a, b int) bool { return cols[a].j < cols[b].j })
		for _, e := range cols {
			m.Col = append(m.Col, e.j)
			m.Val = append(m.Val, e.v)
		}
		m.RowPtr[i+1] = len(m.Val)
	}
	return m
}

// Memplus generates an unsymmetric "memory circuit" style matrix: a strong
// diagonal, sub/super-diagonal coupling (the bit lines) and sparse random
// long-range entries (the word lines), echoing the structure of the
// Matrix Market memplus set used in the paper's SuperLU experiments.
// Entries span several orders of magnitude, so the factorization is
// sensitive enough to precision for the threshold sweep to be meaningful.
func Memplus(n int, seed uint64) *CSR {
	g := NewLCG(seed)
	rows := make([]map[int]float64, n)
	for i := range rows {
		rows[i] = make(map[int]float64)
		// A weak, widely varying diagonal keeps the matrix nonsingular but
		// meaningfully conditioned, so single-precision solves lose three
		// to four digits — like the original memplus circuit matrix.
		rows[i][i] = 0.05 + 0.6*math.Pow(10, -2*g.Float64())
		if i > 0 {
			rows[i][i-1] = -0.3 * g.Float64()
		}
		if i+1 < n {
			rows[i][i+1] = -0.3 * g.Float64()
		}
		// Long-range couplings with widely varying magnitude.
		for k := 0; k < 4; k++ {
			j := g.Intn(n)
			if j == i {
				continue
			}
			mag := math.Pow(10, -3*g.Float64()) // 1e-3 .. 1
			if g.Next()&1 == 0 {
				mag = -mag
			}
			rows[i][j] = mag * 0.4
		}
	}
	m := &CSR{N: n, RowPtr: make([]int, n+1)}
	for i := 0; i < n; i++ {
		cols := make([]int, 0, len(rows[i]))
		for j := range rows[i] {
			cols = append(cols, j)
		}
		sort.Ints(cols)
		for _, j := range cols {
			m.Col = append(m.Col, j)
			m.Val = append(m.Val, rows[i][j])
		}
		m.RowPtr[i+1] = len(m.Val)
	}
	return m
}

// Poisson1D builds the standard [-1, 2, -1] tridiagonal operator.
func Poisson1D(n int) *CSR {
	m := &CSR{N: n, RowPtr: make([]int, n+1)}
	for i := 0; i < n; i++ {
		if i > 0 {
			m.Col = append(m.Col, i-1)
			m.Val = append(m.Val, -1)
		}
		m.Col = append(m.Col, i)
		m.Val = append(m.Val, 2)
		if i+1 < n {
			m.Col = append(m.Col, i+1)
			m.Val = append(m.Val, -1)
		}
		m.RowPtr[i+1] = len(m.Val)
	}
	return m
}
