// Package cfg builds control-flow graphs over fpmix program images and
// provides the binary-patching primitives the mixed-precision instrumenter
// is built on: basic-block discovery, block splitting at arbitrary
// instructions (Figure 7 of the paper), and a whole-image rewriter that
// relocates code, expands selected instructions into snippet sequences and
// fixes up every branch target — the role Dyninst's CFG-patching API and
// binary rewriter play in the original system.
package cfg

import (
	"fmt"
	"sort"

	"fpmix/internal/isa"
	"fpmix/internal/prog"
)

// Block is a basic block: a maximal single-entry straight-line instruction
// sequence.
type Block struct {
	Addr   uint64 // address of the first instruction
	Instrs []isa.Instr
}

// End returns the address one past the last instruction.
func (b *Block) End() uint64 {
	last := b.Instrs[len(b.Instrs)-1]
	return last.Addr + uint64(isa.EncodedSize(last))
}

// FuncGraph is the set of basic blocks of one function.
type FuncGraph struct {
	Func   *prog.Func
	Blocks []*Block // sorted by address
}

// Graph is the control-flow view of a whole module.
type Graph struct {
	Module *prog.Module
	Funcs  []*FuncGraph
}

// Build discovers basic blocks in every function of m. Leaders are the
// function entry, targets of intra-module branches, and instructions
// following a block-ending instruction.
func Build(m *prog.Module) (*Graph, error) {
	// Collect every branch target in the module first: a branch may target
	// another function's interior (the hl compiler never emits these, but
	// the format allows them).
	targets := make(map[uint64]bool)
	for _, f := range m.Funcs {
		for _, in := range f.Instrs {
			if in.Op.IsBranch() && in.Op != isa.CALL {
				targets[uint64(in.A.Imm)] = true
			}
		}
	}
	g := &Graph{Module: m}
	for _, f := range m.Funcs {
		fg := &FuncGraph{Func: f}
		leader := make(map[uint64]bool, len(f.Instrs))
		if len(f.Instrs) == 0 {
			return nil, fmt.Errorf("cfg: function %s is empty", f.Name)
		}
		leader[f.Instrs[0].Addr] = true
		for i, in := range f.Instrs {
			if targets[in.Addr] {
				leader[in.Addr] = true
			}
			if in.Op.EndsBlock() && i+1 < len(f.Instrs) {
				leader[f.Instrs[i+1].Addr] = true
			}
		}
		var cur *Block
		for _, in := range f.Instrs {
			if leader[in.Addr] {
				cur = &Block{Addr: in.Addr}
				fg.Blocks = append(fg.Blocks, cur)
			}
			cur.Instrs = append(cur.Instrs, in)
		}
		g.Funcs = append(g.Funcs, fg)
	}
	return g, nil
}

// FuncGraphByName returns the function graph with the given name, or nil.
func (g *Graph) FuncGraphByName(name string) *FuncGraph {
	for _, fg := range g.Funcs {
		if fg.Func.Name == name {
			return fg
		}
	}
	return nil
}

// BlockAt returns the block starting at exactly addr, or nil.
func (fg *FuncGraph) BlockAt(addr uint64) *Block {
	i := sort.Search(len(fg.Blocks), func(i int) bool { return fg.Blocks[i].Addr >= addr })
	if i < len(fg.Blocks) && fg.Blocks[i].Addr == addr {
		return fg.Blocks[i]
	}
	return nil
}

// BlockContaining returns the block whose address range contains addr.
func (fg *FuncGraph) BlockContaining(addr uint64) *Block {
	i := sort.Search(len(fg.Blocks), func(i int) bool { return fg.Blocks[i].End() > addr })
	if i < len(fg.Blocks) && fg.Blocks[i].Addr <= addr {
		return fg.Blocks[i]
	}
	return nil
}

// Split splits the block containing addr so that addr begins a new block,
// mirroring the Dyninst block-splitting primitive the paper's patcher uses
// (Figure 7). It returns the two halves; if addr already starts a block
// the block is returned unchanged as both halves' second element.
func (fg *FuncGraph) Split(addr uint64) (before, after *Block, err error) {
	b := fg.BlockContaining(addr)
	if b == nil {
		return nil, nil, fmt.Errorf("cfg: %s: no block contains %#x", fg.Func.Name, addr)
	}
	if b.Addr == addr {
		return nil, b, nil
	}
	idx := -1
	for i, in := range b.Instrs {
		if in.Addr == addr {
			idx = i
			break
		}
	}
	if idx < 0 {
		return nil, nil, fmt.Errorf("cfg: %#x is not an instruction boundary in block %#x", addr, b.Addr)
	}
	after = &Block{Addr: addr, Instrs: b.Instrs[idx:]}
	b.Instrs = b.Instrs[:idx:idx]
	// Insert after b, keeping the slice sorted.
	for i, bb := range fg.Blocks {
		if bb == b {
			fg.Blocks = append(fg.Blocks[:i+1], append([]*Block{after}, fg.Blocks[i+1:]...)...)
			break
		}
	}
	return b, after, nil
}
