package cfg

import (
	"bytes"
	"testing"

	"fpmix/internal/isa"
	"fpmix/internal/prog"
)

// expandWithLabels is a Rewrite expander that wraps every ADDSD in a
// three-instruction snippet containing a snippet-local branch, exercising
// label resolution on both paths.
func expandWithLabels(in isa.Instr) ([]isa.Instr, error) {
	if in.Op != isa.ADDSD {
		return nil, nil
	}
	return []isa.Instr{
		isa.I(isa.CMPI, isa.Gpr(isa.R15), isa.Imm(0)),
		isa.I(isa.JE, isa.Imm(Label(2))),
		in,
	}, nil
}

// TestRewriteExpandedMatchesRewrite asserts the fast path lays out a
// byte-identical module to the general rewriter for the same sequences.
func TestRewriteExpandedMatchesRewrite(t *testing.T) {
	m := buildMod(t)
	m.Debug = map[uint64]string{m.Funcs[0].Instrs[5].Addr: "loop.f:1"}

	slow, err := Rewrite(m, expandWithLabels)
	if err != nil {
		t.Fatal(err)
	}

	// Build the expansion cache once; reuse it across two assemblies to
	// verify the cached sequences are not mutated by relocation.
	cache := make(map[uint64]*Expansion)
	for _, f := range m.Funcs {
		for _, in := range f.Instrs {
			if seq, _ := expandWithLabels(in); seq != nil {
				cache[in.Addr] = NewExpansion(seq)
			}
		}
	}
	expander := func(in isa.Instr) (*Expansion, error) { return cache[in.Addr], nil }

	for round := 0; round < 2; round++ {
		fast, err := RewriteExpanded(m, expander)
		if err != nil {
			t.Fatal(err)
		}
		sb, err := prog.Save(slow)
		if err != nil {
			t.Fatal(err)
		}
		fb, err := prog.Save(fast)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(sb, fb) {
			t.Fatalf("round %d: RewriteExpanded image differs from Rewrite", round)
		}
		if len(fast.Debug) != len(slow.Debug) {
			t.Fatalf("debug maps differ: %d vs %d", len(fast.Debug), len(slow.Debug))
		}
		for a, l := range slow.Debug {
			if fast.Debug[a] != l {
				t.Fatalf("debug label at %#x: %q vs %q", a, fast.Debug[a], l)
			}
		}
	}
}

func TestRewriteExpandedIdentity(t *testing.T) {
	m := buildMod(t)
	slow, err := Rewrite(m, func(isa.Instr) ([]isa.Instr, error) { return nil, nil })
	if err != nil {
		t.Fatal(err)
	}
	fast, err := RewriteExpanded(m, func(isa.Instr) (*Expansion, error) { return nil, nil })
	if err != nil {
		t.Fatal(err)
	}
	sb, _ := prog.Save(slow)
	fb, _ := prog.Save(fast)
	if !bytes.Equal(sb, fb) {
		t.Fatal("identity rewrite differs between paths")
	}
}

func TestRewriteExpandedErrors(t *testing.T) {
	m := buildMod(t)
	if _, err := RewriteExpanded(m, func(in isa.Instr) (*Expansion, error) {
		if in.Op == isa.ADDSD {
			return NewExpansion([]isa.Instr{}), nil
		}
		return nil, nil
	}); err == nil {
		t.Error("empty expansion not rejected")
	}
	if _, err := RewriteExpanded(m, func(in isa.Instr) (*Expansion, error) {
		if in.Op == isa.ADDSD {
			return NewExpansion([]isa.Instr{isa.I(isa.JMP, isa.Imm(Label(7)))}), nil
		}
		return nil, nil
	}); err == nil {
		t.Error("out-of-range snippet label not rejected")
	}
	if _, err := RewriteExpanded(m, func(in isa.Instr) (*Expansion, error) {
		if in.Op == isa.ADDSD {
			return NewExpansion([]isa.Instr{isa.I(isa.JMP, isa.Imm(0x9999))}), nil
		}
		return nil, nil
	}); err == nil {
		t.Error("unknown branch target not rejected")
	}
}
