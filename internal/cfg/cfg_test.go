package cfg

import (
	"math"
	"testing"

	"fpmix/internal/isa"
	"fpmix/internal/prog"
	"fpmix/internal/vm"
)

// buildMod assembles a module with one function containing a loop:
//
//	main:
//	  movri rcx, 3
//	  movri r15, bits(1.0); movq xmm1, r15
//	  xorr rax, rax ; xorpd? no — movq xmm0, rax (0.0)
//	loop:
//	  addsd xmm0, xmm1
//	  subi rcx, 1
//	  cmpi rcx, 0
//	  jg loop
//	  syscall out_f64
//	  halt
func buildMod(t *testing.T) *prog.Module {
	t.Helper()
	one := int64(math.Float64bits(1.0))
	f := &prog.Func{Name: "main", Instrs: []isa.Instr{
		isa.I(isa.MOVRI, isa.Gpr(isa.RCX), isa.Imm(3)),
		isa.I(isa.MOVRI, isa.Gpr(isa.R15), isa.Imm(one)),
		isa.I(isa.MOVQ, isa.Xmm(1), isa.Gpr(isa.R15)),
		isa.I(isa.XORR, isa.Gpr(isa.RAX), isa.Gpr(isa.RAX)),
		isa.I(isa.MOVQ, isa.Xmm(0), isa.Gpr(isa.RAX)),
		isa.I(isa.ADDSD, isa.Xmm(0), isa.Xmm(1)), // loop head, index 5
		isa.I(isa.SUBI, isa.Gpr(isa.RCX), isa.Imm(1)),
		isa.I(isa.CMPI, isa.Gpr(isa.RCX), isa.Imm(0)),
		isa.I(isa.JG, isa.Imm(0)), // patched
		isa.I(isa.SYSCALL, isa.Imm(isa.SysOutF64)),
		isa.I(isa.HALT),
	}}
	m, err := prog.Build("t", []*prog.Func{f}, nil, prog.DataBase+4096, "main")
	if err != nil {
		t.Fatal(err)
	}
	f.Instrs[8].A.Imm = int64(f.Instrs[5].Addr)
	return m
}

func TestBuildBlocks(t *testing.T) {
	m := buildMod(t)
	g, err := Build(m)
	if err != nil {
		t.Fatal(err)
	}
	fg := g.FuncGraphByName("main")
	if fg == nil {
		t.Fatal("main not found")
	}
	// Expect 3 blocks: prologue, loop body, epilogue.
	if len(fg.Blocks) != 3 {
		t.Fatalf("blocks = %d, want 3", len(fg.Blocks))
	}
	if fg.Blocks[1].Addr != m.Funcs[0].Instrs[5].Addr {
		t.Errorf("loop block at %#x", fg.Blocks[1].Addr)
	}
	if n := len(fg.Blocks[1].Instrs); n != 4 {
		t.Errorf("loop block has %d instrs, want 4", n)
	}
	if fg.Blocks[2].Instrs[len(fg.Blocks[2].Instrs)-1].Op != isa.HALT {
		t.Error("epilogue should end in halt")
	}
}

func TestBlockLookupAndEnd(t *testing.T) {
	m := buildMod(t)
	g, _ := Build(m)
	fg := g.Funcs[0]
	loop := fg.Blocks[1]
	if got := fg.BlockAt(loop.Addr); got != loop {
		t.Error("BlockAt failed")
	}
	if got := fg.BlockAt(loop.Addr + 1); got != nil {
		t.Error("BlockAt mid-block should be nil")
	}
	mid := loop.Instrs[1].Addr
	if got := fg.BlockContaining(mid); got != loop {
		t.Error("BlockContaining failed")
	}
	if loop.End() != loop.Instrs[3].Addr+uint64(isa.EncodedSize(loop.Instrs[3])) {
		t.Error("End mismatch")
	}
}

func TestSplitBlock(t *testing.T) {
	m := buildMod(t)
	g, _ := Build(m)
	fg := g.Funcs[0]
	loop := fg.Blocks[1]
	splitAt := loop.Instrs[1].Addr // before subi
	before, after, err := fg.Split(splitAt)
	if err != nil {
		t.Fatal(err)
	}
	if len(fg.Blocks) != 4 {
		t.Fatalf("blocks after split = %d, want 4", len(fg.Blocks))
	}
	if before.Addr == after.Addr {
		t.Error("split produced identical blocks")
	}
	if len(before.Instrs) != 1 || before.Instrs[0].Op != isa.ADDSD {
		t.Errorf("before block wrong: %v", before.Instrs)
	}
	if after.Addr != splitAt || len(after.Instrs) != 3 {
		t.Errorf("after block wrong")
	}
	// Splitting at a block start is a no-op.
	_, same, err := fg.Split(after.Addr)
	if err != nil || same != after {
		t.Errorf("split at boundary: %v, %v", same, err)
	}
	// Splitting at a non-boundary errors.
	if _, _, err := fg.Split(splitAt + 1); err == nil {
		t.Error("split mid-instruction should fail")
	}
	if _, _, err := fg.Split(0x3); err == nil {
		t.Error("split outside function should fail")
	}
}

func TestRewriteIdentity(t *testing.T) {
	m := buildMod(t)
	out, err := Rewrite(m, func(in isa.Instr) ([]isa.Instr, error) { return nil, nil })
	if err != nil {
		t.Fatal(err)
	}
	mach1, err := vm.New(m)
	if err != nil {
		t.Fatal(err)
	}
	if err := mach1.Run(); err != nil {
		t.Fatal(err)
	}
	mach2, err := vm.New(out)
	if err != nil {
		t.Fatal(err)
	}
	if err := mach2.Run(); err != nil {
		t.Fatal(err)
	}
	if mach1.Out[0].Bits != mach2.Out[0].Bits {
		t.Errorf("identity rewrite changed output: %v vs %v", mach1.Out[0].F64(), mach2.Out[0].F64())
	}
}

// TestRewriteExpansion replaces the ADDSD with a snippet that adds twice,
// using a snippet-local branch to skip a third add. The loop runs 3 times,
// so the result becomes 6 instead of 3, proving expansion + label fixup +
// branch retargeting all work.
func TestRewriteExpansion(t *testing.T) {
	m := buildMod(t)
	out, err := Rewrite(m, func(in isa.Instr) ([]isa.Instr, error) {
		if in.Op != isa.ADDSD {
			return nil, nil
		}
		return []isa.Instr{
			isa.I(isa.ADDSD, isa.Xmm(0), isa.Xmm(1)),
			isa.I(isa.JMP, isa.Imm(Label(3))),        // skip the dead add
			isa.I(isa.ADDSD, isa.Xmm(0), isa.Xmm(0)), // dead
			isa.I(isa.ADDSD, isa.Xmm(0), isa.Xmm(1)), // label 3
		}, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	mach, err := vm.New(out)
	if err != nil {
		t.Fatal(err)
	}
	if err := mach.Run(); err != nil {
		t.Fatal(err)
	}
	if got := mach.Out[0].F64(); got != 6.0 {
		t.Errorf("expanded loop result = %v, want 6", got)
	}
}

func TestRewriteMovesLoopTarget(t *testing.T) {
	// Expanding an instruction before the loop head must shift the head;
	// the back-edge must be retargeted to the new address.
	m := buildMod(t)
	out, err := Rewrite(m, func(in isa.Instr) ([]isa.Instr, error) {
		if in.Op == isa.MOVRI {
			return []isa.Instr{isa.I(isa.NOP), in}, nil
		}
		return nil, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	mach, err := vm.New(out)
	if err != nil {
		t.Fatal(err)
	}
	if err := mach.Run(); err != nil {
		t.Fatal(err)
	}
	if got := mach.Out[0].F64(); got != 3.0 {
		t.Errorf("result = %v, want 3", got)
	}
}

func TestRewriteBranchIntoExpansionHitsPrologue(t *testing.T) {
	// The loop back-edge targets the expanded ADDSD; after rewriting it must
	// land on the first instruction of the expansion (the snippet prologue).
	m := buildMod(t)
	marker := isa.I(isa.ORI, isa.Gpr(isa.RDX), isa.Imm(1))
	out, err := Rewrite(m, func(in isa.Instr) ([]isa.Instr, error) {
		if in.Op != isa.ADDSD {
			return nil, nil
		}
		return []isa.Instr{marker, in}, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	mach, err := vm.New(out)
	if err != nil {
		t.Fatal(err)
	}
	if err := mach.Run(); err != nil {
		t.Fatal(err)
	}
	if mach.GPR[isa.RDX] != 1 {
		t.Error("snippet prologue not executed via back edge")
	}
	if got := mach.Out[0].F64(); got != 3.0 {
		t.Errorf("result = %v", got)
	}
}

func TestRewriteErrors(t *testing.T) {
	m := buildMod(t)
	if _, err := Rewrite(m, func(in isa.Instr) ([]isa.Instr, error) {
		return []isa.Instr{}, nil
	}); err == nil {
		t.Error("empty expansion accepted")
	}
	if _, err := Rewrite(m, func(in isa.Instr) ([]isa.Instr, error) {
		if in.Op == isa.ADDSD {
			return []isa.Instr{isa.I(isa.JMP, isa.Imm(Label(5)))}, nil
		}
		return nil, nil
	}); err == nil {
		t.Error("out-of-range label accepted")
	}
	bad := buildMod(t)
	bad.Funcs[0].Instrs[8].A.Imm = 0x99 // dangling branch target
	if _, err := Rewrite(bad, nil2); err == nil {
		t.Error("dangling target accepted")
	}
}

func nil2(in isa.Instr) ([]isa.Instr, error) { return nil, nil }

func TestAddrMapMatchesRewrite(t *testing.T) {
	m := buildMod(t)
	exp := func(in isa.Instr) ([]isa.Instr, error) {
		if in.Op == isa.ADDSD {
			return []isa.Instr{isa.I(isa.NOP), in}, nil
		}
		return nil, nil
	}
	am, err := AddrMap(m, exp)
	if err != nil {
		t.Fatal(err)
	}
	out, err := Rewrite(m, exp)
	if err != nil {
		t.Fatal(err)
	}
	if am[m.Entry] != out.Entry {
		t.Error("entry mapping mismatch")
	}
	for _, f := range m.Funcs {
		for _, in := range f.Instrs {
			if _, ok := am[in.Addr]; !ok {
				t.Errorf("no mapping for %#x", in.Addr)
			}
		}
	}
}
