package cfg

import (
	"sort"

	"fpmix/internal/isa"
)

// This file detects the natural loops of a function graph and, where the
// code matches the counted-loop shape the hl compiler emits, recovers a
// static trip-count bound. The error-bound analysis (internal/errbound)
// uses the nesting structure and trip counts for bounded-iteration
// unrolling: loop-head widening is delayed, and accumulators inside
// statically counted nests get execution-count bounds.

// Loop is one natural loop of a function: the head block plus every
// block that can reach the back edge's source without leaving through
// the head.
type Loop struct {
	// Head is the address of the loop-header block.
	Head uint64
	// Blocks lists the addresses of all member blocks (head included),
	// sorted.
	Blocks []uint64
	// Parent indexes the innermost enclosing loop in the slice returned
	// by Loops, or -1 for a top-level loop.
	Parent int
	// Trip is a proven upper bound on the number of iterations, or 0
	// when no bound is statically known. It is recovered from the
	// counted-loop shape the hl compiler emits for For statements:
	//
	//	  MOVRI r, c ; STORE [v], r      (init, in the fall-in block)
	//	head:
	//	  LOAD  rv, [v]
	//	  MOVRI rt, n
	//	  CMPR  rv, rt
	//	  JGE   exit
	//	  ...body..., exactly one other store to [v]: LOAD;ADDI 1;STORE
	//
	// and only claimed when the loop variable's slot is written nowhere
	// else in the module and the module has no unresolvable stores that
	// could alias it.
	Trip int64
	// CounterDisp is the loop-variable slot displacement the trip bound
	// was proven against (meaningful only when Trip > 0).
	CounterDisp int32
}

// Loops finds the natural loops of fg. Irreducible cycles (a back edge
// to a block that does not dominate its source) are ignored — the hl
// compiler never emits them, and callers treat unrecognized cycles as
// unbounded. Loops are returned outermost-first; nesting is reported via
// Parent.
func (fg *FuncGraph) Loops() []Loop {
	n := len(fg.Blocks)
	if n == 0 {
		return nil
	}
	idx := make(map[uint64]int, n)
	for i, b := range fg.Blocks {
		idx[b.Addr] = i
	}
	succs := make([][]int, n)
	for i, b := range fg.Blocks {
		last := b.Instrs[len(b.Instrs)-1]
		addTarget := func(addr uint64) {
			if j, ok := idx[addr]; ok {
				succs[i] = append(succs[i], j)
			}
		}
		switch {
		case last.Op == isa.JMP:
			addTarget(uint64(last.A.Imm))
		case last.Op.IsCondBranch():
			addTarget(uint64(last.A.Imm))
			if i+1 < n {
				succs[i] = append(succs[i], i+1)
			}
		case last.Op == isa.RET || last.Op == isa.HALT:
			// no intra-function successors
		default:
			// CALL and straight-line flow continue to the next block.
			if i+1 < n {
				succs[i] = append(succs[i], i+1)
			}
		}
	}

	dom := dominators(succs)
	var loops []Loop
	for i := range fg.Blocks {
		for _, j := range succs[i] {
			if dominates(dom, j, i) {
				// Back edge i -> j: collect the natural loop of (i, j).
				body := naturalLoop(i, j, n, func(k int) []int { return preds(succs, k) })
				var addrs []uint64
				for _, b := range body {
					addrs = append(addrs, fg.Blocks[b].Addr)
				}
				sort.Slice(addrs, func(a, c int) bool { return addrs[a] < addrs[c] })
				loops = append(loops, Loop{Head: fg.Blocks[j].Addr, Blocks: addrs, Parent: -1})
			}
		}
	}
	// Merge loops sharing a head (multiple back edges) and order
	// outermost-first (larger body first, then by head address).
	loops = mergeSameHead(loops)
	sort.Slice(loops, func(a, b int) bool {
		if len(loops[a].Blocks) != len(loops[b].Blocks) {
			return len(loops[a].Blocks) > len(loops[b].Blocks)
		}
		return loops[a].Head < loops[b].Head
	})
	// Nesting: the parent of L is the smallest loop strictly containing it.
	for i := range loops {
		member := make(map[uint64]bool, len(loops[i].Blocks))
		for _, a := range loops[i].Blocks {
			member[a] = true
		}
		for j := i - 1; j >= 0; j-- {
			if j == i || len(loops[j].Blocks) <= len(loops[i].Blocks) {
				continue
			}
			if contains(loops[j].Blocks, loops[i].Head) {
				loops[i].Parent = j
				break
			}
		}
		_ = member
	}
	for i := range loops {
		fg.detectTrip(&loops[i], idx)
	}
	return loops
}

// preds computes the predecessors of block k on demand.
func preds(succs [][]int, k int) []int {
	var out []int
	for i, ss := range succs {
		for _, j := range ss {
			if j == k {
				out = append(out, i)
			}
		}
	}
	return out
}

// dominators computes the dominator sets of a small block graph with the
// classic iterative bit-set algorithm (block counts are tiny).
func dominators(succs [][]int) [][]bool {
	n := len(succs)
	dom := make([][]bool, n)
	for i := range dom {
		dom[i] = make([]bool, n)
		for j := range dom[i] {
			dom[i][j] = true
		}
	}
	entry := make([]bool, n)
	entry[0] = true
	dom[0] = entry
	changed := true
	for changed {
		changed = false
		for i := 1; i < n; i++ {
			cur := make([]bool, n)
			first := true
			for p, ss := range succs {
				for _, j := range ss {
					if j != i {
						continue
					}
					if first {
						copy(cur, dom[p])
						first = false
					} else {
						for k := range cur {
							cur[k] = cur[k] && dom[p][k]
						}
					}
				}
			}
			if first {
				// Unreachable block: keep the full set.
				continue
			}
			cur[i] = true
			for k := range cur {
				if cur[k] != dom[i][k] {
					dom[i] = cur
					changed = true
					break
				}
			}
		}
	}
	return dom
}

func dominates(dom [][]bool, a, b int) bool { return dom[b][a] }

// naturalLoop collects the natural loop of back edge tail->head.
func naturalLoop(tail, head, n int, preds func(int) []int) []int {
	in := make([]bool, n)
	in[head] = true
	stack := []int{tail}
	in[tail] = true
	for len(stack) > 0 {
		b := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, p := range preds(b) {
			if !in[p] {
				in[p] = true
				stack = append(stack, p)
			}
		}
	}
	var out []int
	for i, ok := range in {
		if ok {
			out = append(out, i)
		}
	}
	return out
}

func mergeSameHead(loops []Loop) []Loop {
	byHead := map[uint64]int{}
	var out []Loop
	for _, l := range loops {
		if i, ok := byHead[l.Head]; ok {
			seen := map[uint64]bool{}
			for _, a := range out[i].Blocks {
				seen[a] = true
			}
			for _, a := range l.Blocks {
				if !seen[a] {
					out[i].Blocks = append(out[i].Blocks, a)
				}
			}
			sort.Slice(out[i].Blocks, func(x, y int) bool { return out[i].Blocks[x] < out[i].Blocks[y] })
			continue
		}
		byHead[l.Head] = len(out)
		out = append(out, l)
	}
	return out
}

func contains(sorted []uint64, addr uint64) bool {
	i := sort.Search(len(sorted), func(i int) bool { return sorted[i] >= addr })
	return i < len(sorted) && sorted[i] == addr
}

// detectTrip pattern-matches the hl counted-loop shape on l's header and
// fall-in block and records a proven iteration bound. The caller
// (errbound) separately verifies the loop variable's slot has no other
// writers; here only the local shape is checked:
//
//   - header begins LOAD rv, [base+d] ; MOVRI rt, n ; CMPR rv, rt ; JGE out
//     with out not a member block,
//   - the immediately preceding block ends MOVRI ri, c ; STORE [base+d], ri,
//   - inside the loop the only stores to [base+d] follow the increment
//     shape LOAD r, [base+d] ; ADDI r, 1 ; STORE [base+d], r,
//
// which bounds iterations by max(0, n-c): the counter starts at c, grows
// by exactly 1 per iteration, and the loop exits once it reaches n.
func (fg *FuncGraph) detectTrip(l *Loop, idx map[uint64]int) {
	head := fg.BlockAt(l.Head)
	if head == nil || len(head.Instrs) < 4 {
		return
	}
	ld, mv, cmp, br := head.Instrs[0], head.Instrs[1], head.Instrs[2], head.Instrs[3]
	if ld.Op != isa.LOAD || ld.A.Kind != isa.KindGPR || ld.B.Kind != isa.KindMem || ld.B.Mem.HasIndex {
		return
	}
	if mv.Op != isa.MOVRI || mv.A.Kind != isa.KindGPR {
		return
	}
	if cmp.Op != isa.CMPR || cmp.A.Reg != ld.A.Reg || cmp.B.Reg != mv.A.Reg {
		return
	}
	if br.Op != isa.JGE || contains(l.Blocks, uint64(br.A.Imm)) {
		return
	}
	base, disp, bound := ld.B.Mem.Base, ld.B.Mem.Disp, mv.B.Imm

	// Fall-in block: the block immediately before the header.
	hi, ok := idx[l.Head]
	if !ok || hi == 0 {
		return
	}
	pre := fg.Blocks[hi-1]
	if len(pre.Instrs) < 2 {
		return
	}
	st := pre.Instrs[len(pre.Instrs)-1]
	mvi := pre.Instrs[len(pre.Instrs)-2]
	if st.Op != isa.STORE || st.A.Kind != isa.KindMem || st.A.Mem.HasIndex ||
		st.A.Mem.Base != base || st.A.Mem.Disp != disp || st.B.Kind != isa.KindGPR {
		return
	}
	if mvi.Op != isa.MOVRI || mvi.A.Reg != st.B.Reg {
		return
	}
	init := mvi.B.Imm

	// Every store to the counter slot inside the loop must be the
	// canonical +1 increment.
	for _, ba := range l.Blocks {
		b := fg.BlockAt(ba)
		for i, in := range b.Instrs {
			if in.Op != isa.STORE || in.A.Kind != isa.KindMem || in.A.Mem.HasIndex ||
				in.A.Mem.Base != base || in.A.Mem.Disp != disp {
				continue
			}
			if i < 2 {
				return
			}
			add := b.Instrs[i-1]
			ld2 := b.Instrs[i-2]
			if in.B.Kind != isa.KindGPR ||
				add.Op != isa.ADDI || add.A.Reg != in.B.Reg || add.B.Imm != 1 ||
				ld2.Op != isa.LOAD || ld2.A.Reg != in.B.Reg ||
				ld2.B.Kind != isa.KindMem || ld2.B.Mem.HasIndex ||
				ld2.B.Mem.Base != base || ld2.B.Mem.Disp != disp {
				return
			}
		}
	}

	trip := bound - init
	if trip < 0 {
		trip = 0
	}
	l.Trip = trip + 1 // the header test runs once more than the body
	l.CounterDisp = disp
}
