package cfg

import (
	"fmt"
	"sort"

	"fpmix/internal/isa"
	"fpmix/internal/prog"
)

// Slotted layout: one address map shared by every configuration.
//
// Rewrite and RewriteExpanded lay each replacement sequence out at exactly
// its encoded size, so two configurations of the same module place the
// shared instructions at different addresses as soon as one replacement
// site differs. RewriteSlotted instead reserves a fixed-size slot at every
// replacement site — the maximum encoded size over all of the site's
// variants — and lays the rest of the module out against those slots. The
// resulting address map is identical for every choice of variants: shared
// instructions keep one address across all configurations, and each site's
// variants are relocated once, to the same slot base. That is what lets a
// machine snapshot taken under one configuration be restored under another
// (the program counter and instruction counts translate by address), and
// what lets a linker re-splice only the sites whose variant changed.
//
// A variant shorter than its slot leaves a gap at the slot tail. Execution
// never reaches the gap — the virtual machine advances by instruction
// index, not by address — but the skeleton module RewriteSlotted returns
// fails Module.Validate (which insists on contiguous encodings) and must
// not be serialized to an image. It exists to feed vm.NewIncrementalLinker.

// Slot describes one replacement site's variants. Entries are indexed by a
// caller-defined variant number; a nil entry means the variant is
// unavailable at this site (selecting it is the caller's error to surface).
// Variants[0] must be non-nil: it is the variant materialized in the
// skeleton module.
type Slot struct {
	Variants []*Expansion
}

// SlottedSite is one replacement site of the stable layout: the slot base
// address and every variant's instruction sequence relocated to it.
type SlottedSite struct {
	OldAddr uint64 // the replaced instruction's address in the input module
	Addr    uint64 // slot base address in the stable layout
	Size    uint64 // slot byte size (max over available variants)
	// Variants[v] is the relocated sequence for variant v, nil when the
	// variant is unavailable. Variants[0] is what the skeleton holds.
	Variants [][]isa.Instr
}

// SlotExpander returns the slot for a replacement site, or nil to keep the
// instruction as shared (non-replaceable) code.
type SlotExpander func(in isa.Instr) (*Slot, error)

// RewriteSlotted lays m out with a fixed-size slot at every site slotFor
// recognizes and returns the skeleton module (each slot holding variant 0)
// plus the relocated variant table, in address order. The skeleton is not
// validated — slots shorter than their size break the contiguity invariant
// by design — and must only be consumed by layout-aware code.
func RewriteSlotted(m *prog.Module, slotFor SlotExpander) (*prog.Module, []SlottedSite, error) {
	type site struct {
		oldAddr uint64
		slot    *Slot
		newAddr uint64
		size    uint64
		funcIdx int
	}
	type shared struct {
		in      isa.Instr
		newAddr uint64
		funcIdx int
	}

	// Pass 1: lay out. Slots are sized to their largest available variant,
	// so the address assignment is independent of any variant choice.
	addrMap := make(map[uint64]uint64, 1024) // old -> new
	funcs := make([]*prog.Func, len(m.Funcs))
	var sites []site
	var shareds []shared
	addr := prog.CodeBase
	for fi, f := range m.Funcs {
		funcs[fi] = &prog.Func{Name: f.Name, Addr: addr}
		for i := range f.Instrs {
			in := f.Instrs[i]
			slot, err := slotFor(in)
			if err != nil {
				return nil, nil, fmt.Errorf("cfg: slotting %s at %#x: %w", in.Op, in.Addr, err)
			}
			if slot == nil {
				addrMap[in.Addr] = addr
				shareds = append(shareds, shared{in: in, newAddr: addr, funcIdx: fi})
				addr += uint64(isa.EncodedSize(in))
				continue
			}
			if len(slot.Variants) == 0 || slot.Variants[0] == nil {
				return nil, nil, fmt.Errorf("cfg: slot at %#x has no variant 0", in.Addr)
			}
			var size uint64
			for _, e := range slot.Variants {
				if e == nil {
					continue
				}
				if len(e.Instrs) == 0 {
					return nil, nil, fmt.Errorf("cfg: empty slot variant at %#x", in.Addr)
				}
				if e.size > size {
					size = e.size
				}
			}
			addrMap[in.Addr] = addr
			sites = append(sites, site{oldAddr: in.Addr, slot: slot, newAddr: addr, size: size, funcIdx: fi})
			addr += size
		}
		funcs[fi].End = addr
	}

	// relocate copies seq to base and fixes its branch targets: snippet
	// labels resolve within the sequence, external targets through the
	// (variant-independent) address map.
	relocate := func(e *Expansion, base uint64, oldAddr uint64) ([]isa.Instr, error) {
		out := append([]isa.Instr(nil), e.Instrs...)
		for k := range out {
			out[k].Addr = base + uint64(e.offs[k])
		}
		for _, bi := range e.branches {
			in := &out[bi]
			t := in.A.Imm
			if t >= LabelBase {
				idx := int(t - LabelBase)
				if idx < 0 || idx >= len(out) {
					return nil, fmt.Errorf("cfg: snippet label %d out of range at %#x", idx, oldAddr)
				}
				in.A.Imm = int64(base + uint64(e.offs[idx]))
				continue
			}
			na, ok := addrMap[uint64(t)]
			if !ok {
				return nil, fmt.Errorf("cfg: %s at old %#x targets unknown address %#x", in.Op, oldAddr, uint64(t))
			}
			in.A.Imm = int64(na)
		}
		return out, nil
	}

	// Pass 2: relocate shared instructions and every site variant.
	outSites := make([]SlottedSite, 0, len(sites))
	perFunc := make([][]isa.Instr, len(m.Funcs))
	for _, s := range shareds {
		in := s.in
		in.Addr = s.newAddr
		if in.Op.IsBranch() {
			t := in.A.Imm
			if t >= LabelBase {
				return nil, nil, fmt.Errorf("cfg: stray label target at %#x", s.in.Addr)
			}
			na, ok := addrMap[uint64(t)]
			if !ok {
				return nil, nil, fmt.Errorf("cfg: %s at old %#x targets unknown address %#x", in.Op, s.in.Addr, uint64(t))
			}
			in.A.Imm = int64(na)
		}
		perFunc[s.funcIdx] = append(perFunc[s.funcIdx], in)
	}
	for _, s := range sites {
		ss := SlottedSite{
			OldAddr:  s.oldAddr,
			Addr:     s.newAddr,
			Size:     s.size,
			Variants: make([][]isa.Instr, len(s.slot.Variants)),
		}
		for v, e := range s.slot.Variants {
			if e == nil {
				continue
			}
			seq, err := relocate(e, s.newAddr, s.oldAddr)
			if err != nil {
				return nil, nil, err
			}
			ss.Variants[v] = seq
		}
		perFunc[s.funcIdx] = append(perFunc[s.funcIdx], ss.Variants[0]...)
		outSites = append(outSites, ss)
	}
	// Instructions were appended shared-first, then sites; restore address
	// order within each function.
	for fi := range perFunc {
		ins := perFunc[fi]
		sortByAddr(ins)
		funcs[fi].Instrs = ins
	}
	sortSites(outSites)

	entry, ok := addrMap[m.Entry]
	if !ok {
		return nil, nil, fmt.Errorf("cfg: entry %#x not mapped", m.Entry)
	}
	out := &prog.Module{
		Name:    m.Name,
		Funcs:   funcs,
		Entry:   entry,
		Data:    append([]byte(nil), m.Data...),
		MemSize: m.MemSize,
	}
	if m.Debug != nil {
		out.Debug = make(map[uint64]string, len(m.Debug))
		for old, lbl := range m.Debug {
			if na, ok := addrMap[old]; ok {
				out.Debug[na] = lbl
			}
		}
	}
	return out, outSites, nil
}

func sortByAddr(ins []isa.Instr) {
	sort.Slice(ins, func(i, j int) bool { return ins[i].Addr < ins[j].Addr })
}

func sortSites(ss []SlottedSite) {
	sort.Slice(ss, func(i, j int) bool { return ss[i].Addr < ss[j].Addr })
}
