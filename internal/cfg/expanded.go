package cfg

import (
	"fmt"

	"fpmix/internal/isa"
	"fpmix/internal/prog"
)

// Expansion is a pre-expanded replacement sequence with its layout
// metadata computed once: per-instruction byte offsets and the indices of
// branch instructions needing fixup. Caching expansions lets a search
// re-assemble instrumented modules by splicing, instead of re-running
// snippet generation and encoding-size computation on every evaluation.
//
// The Instrs slice is treated as immutable by RewriteExpanded (sequences
// are copied before relocation), so one Expansion may be spliced into any
// number of rewritten modules concurrently.
type Expansion struct {
	Instrs   []isa.Instr
	offs     []uint32 // byte offset of each instruction within the expansion
	size     uint64   // total encoded size in bytes
	branches []int32  // indices of instructions with an Imm branch target
}

// NewExpansion precomputes the layout metadata for seq. The caller must
// not mutate seq afterwards.
func NewExpansion(seq []isa.Instr) *Expansion {
	e := &Expansion{Instrs: seq, offs: make([]uint32, len(seq))}
	for i := range seq {
		e.offs[i] = uint32(e.size)
		e.size += uint64(isa.EncodedSize(seq[i]))
		if seq[i].Op.IsBranch() {
			e.branches = append(e.branches, int32(i))
		}
	}
	return e
}

// Size returns the total encoded size of the expansion in bytes.
func (e *Expansion) Size() uint64 { return e.size }

// ExpansionExpander returns the cached expansion replacing in, or nil to
// keep the instruction unchanged. A non-nil error aborts the rewrite
// immediately, before any further instruction is visited.
type ExpansionExpander func(in isa.Instr) (*Expansion, error)

// RewriteExpanded is the fast path of Rewrite for pre-expanded sequences:
// it produces a module byte-identical to what Rewrite would build from the
// same per-instruction sequences, but lays out and fixes up branches using
// the metadata precomputed in each Expansion. Cached expansions are copied
// before relocation, so the same Expansion table can serve every
// configuration of a search.
func RewriteExpanded(m *prog.Module, expand ExpansionExpander) (*prog.Module, error) {
	type site struct {
		oldAddr uint64
		exp     *Expansion
		newAddr uint64
		funcIdx int
	}

	// Pass 1: lay out using cached sizes.
	addrMap := make(map[uint64]uint64, 1024) // old -> new
	funcs := make([]*prog.Func, len(m.Funcs))
	var sites []site
	counts := make([]int, len(m.Funcs)) // instructions per rewritten function
	addr := prog.CodeBase
	for fi, f := range m.Funcs {
		funcs[fi] = &prog.Func{Name: f.Name, Addr: addr}
		for i := range f.Instrs {
			in := f.Instrs[i]
			exp, eerr := expand(in)
			if eerr != nil {
				return nil, fmt.Errorf("cfg: expanding %s at %#x: %w", in.Op, in.Addr, eerr)
			}
			if exp == nil {
				exp = NewExpansion([]isa.Instr{in})
			}
			if len(exp.Instrs) == 0 {
				return nil, fmt.Errorf("cfg: empty expansion for %s at %#x", in.Op, in.Addr)
			}
			addrMap[in.Addr] = addr
			sites = append(sites, site{oldAddr: in.Addr, exp: exp, newAddr: addr, funcIdx: fi})
			counts[fi] += len(exp.Instrs)
			addr += exp.size
		}
		funcs[fi].End = addr
	}

	// Pass 2: copy sequences, assign addresses and fix up branch targets.
	for fi := range funcs {
		funcs[fi].Instrs = make([]isa.Instr, 0, counts[fi])
	}
	for _, s := range sites {
		f := funcs[s.funcIdx]
		base := len(f.Instrs)
		f.Instrs = append(f.Instrs, s.exp.Instrs...)
		out := f.Instrs[base:]
		for k := range out {
			out[k].Addr = s.newAddr + uint64(s.exp.offs[k])
		}
		for _, bi := range s.exp.branches {
			in := &out[bi]
			t := in.A.Imm
			if t >= LabelBase {
				idx := int(t - LabelBase)
				if idx < 0 || idx >= len(out) {
					return nil, fmt.Errorf("cfg: snippet label %d out of range at %#x", idx, s.oldAddr)
				}
				in.A.Imm = int64(s.newAddr + uint64(s.exp.offs[idx]))
				continue
			}
			na, ok := addrMap[uint64(t)]
			if !ok {
				return nil, fmt.Errorf("cfg: %s at old %#x targets unknown address %#x", in.Op, s.oldAddr, uint64(t))
			}
			in.A.Imm = int64(na)
		}
	}

	entry, ok := addrMap[m.Entry]
	if !ok {
		return nil, fmt.Errorf("cfg: entry %#x not mapped", m.Entry)
	}
	out := &prog.Module{
		Name:    m.Name,
		Funcs:   funcs,
		Entry:   entry,
		Data:    append([]byte(nil), m.Data...),
		MemSize: m.MemSize,
	}
	if m.Debug != nil {
		out.Debug = make(map[uint64]string, len(m.Debug))
		for _, s := range sites {
			lbl, ok := m.Debug[s.oldAddr]
			if !ok {
				continue
			}
			for k := range s.exp.Instrs {
				out.Debug[s.newAddr+uint64(s.exp.offs[k])] = lbl
			}
		}
	}
	if err := out.Validate(); err != nil {
		return nil, fmt.Errorf("cfg: rewritten module invalid: %w", err)
	}
	return out, nil
}
