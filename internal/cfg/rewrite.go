package cfg

import (
	"fmt"

	"fpmix/internal/isa"
	"fpmix/internal/prog"
)

// LabelBase marks snippet-local branch targets. An expansion returned by
// an Expander may contain branches whose immediate is LabelBase+k, meaning
// "the k-th instruction of this expansion"; the rewriter resolves these to
// real addresses during layout. Real code addresses never reach this range.
const LabelBase = int64(1) << 62

// Label returns the snippet-local branch target for instruction index k of
// an expansion.
func Label(k int) int64 { return LabelBase + int64(k) }

// Expander decides, per original instruction, what the rewritten binary
// contains in its place: nil keeps the instruction unchanged; otherwise the
// returned sequence is laid down instead (the paper's "binary blob"
// snippet, spliced in by block patching). A non-nil error aborts the
// rewrite immediately: no further instructions are visited and the error
// is returned to the caller with the failing address attached.
type Expander func(in isa.Instr) ([]isa.Instr, error)

// Rewrite produces a new module in which every instruction of m has been
// passed through expand, all code has been relocated, and every branch
// target — original or snippet-local — has been fixed up. Original
// instruction addresses map to the first instruction of their expansion,
// so branches into replaced instructions land on the snippet prologue,
// exactly as with the paper's edge-rewiring of split blocks.
func Rewrite(m *prog.Module, expand Expander) (*prog.Module, error) {
	type expansion struct {
		oldAddr uint64
		instrs  []isa.Instr
		addrs   []uint64 // new address of each instruction
		funcIdx int
	}

	// Pass 1: expand and lay out.
	addrMap := make(map[uint64]uint64, 1024) // old -> new
	funcs := make([]*prog.Func, len(m.Funcs))
	var exps []*expansion
	addr := prog.CodeBase
	for fi, f := range m.Funcs {
		funcs[fi] = &prog.Func{Name: f.Name, Addr: addr}
		for _, in := range f.Instrs {
			seq, eerr := expand(in)
			if eerr != nil {
				return nil, fmt.Errorf("cfg: expanding %s at %#x: %w", in.Op, in.Addr, eerr)
			}
			if seq == nil {
				seq = []isa.Instr{in}
			}
			if len(seq) == 0 {
				return nil, fmt.Errorf("cfg: empty expansion for %s at %#x", in.Op, in.Addr)
			}
			e := &expansion{oldAddr: in.Addr, instrs: seq, funcIdx: fi}
			addrMap[in.Addr] = addr
			for i := range seq {
				seq[i].Addr = addr
				e.addrs = append(e.addrs, addr)
				addr += uint64(isa.EncodedSize(seq[i]))
			}
			exps = append(exps, e)
		}
		funcs[fi].End = addr
	}

	// Pass 2: fix up branch targets and assemble functions.
	for _, e := range exps {
		for k := range e.instrs {
			in := &e.instrs[k]
			if !in.Op.IsBranch() {
				continue
			}
			t := in.A.Imm
			if t >= LabelBase {
				idx := int(t - LabelBase)
				if idx < 0 || idx >= len(e.addrs) {
					return nil, fmt.Errorf("cfg: snippet label %d out of range at %#x", idx, e.oldAddr)
				}
				in.A.Imm = int64(e.addrs[idx])
				continue
			}
			na, ok := addrMap[uint64(t)]
			if !ok {
				return nil, fmt.Errorf("cfg: %s at old %#x targets unknown address %#x", in.Op, e.oldAddr, uint64(t))
			}
			in.A.Imm = int64(na)
		}
		f := funcs[e.funcIdx]
		f.Instrs = append(f.Instrs, e.instrs...)
	}

	entry, ok := addrMap[m.Entry]
	if !ok {
		return nil, fmt.Errorf("cfg: entry %#x not mapped", m.Entry)
	}
	out := &prog.Module{
		Name:    m.Name,
		Funcs:   funcs,
		Entry:   entry,
		Data:    append([]byte(nil), m.Data...),
		MemSize: m.MemSize,
	}
	// Every instruction of an expansion inherits the source label of the
	// instruction it replaced, so debug views still resolve through
	// instrumented code.
	if m.Debug != nil {
		out.Debug = make(map[uint64]string, len(m.Debug))
		for _, e := range exps {
			lbl, ok := m.Debug[e.oldAddr]
			if !ok {
				continue
			}
			for _, a := range e.addrs {
				out.Debug[a] = lbl
			}
		}
	}
	if err := out.Validate(); err != nil {
		return nil, fmt.Errorf("cfg: rewritten module invalid: %w", err)
	}
	return out, nil
}

// AddrMap is a convenience for tests and tools: it returns the old-to-new
// address mapping Rewrite would produce for the given expander without
// materializing the module twice.
func AddrMap(m *prog.Module, expand Expander) (map[uint64]uint64, error) {
	out := make(map[uint64]uint64)
	addr := prog.CodeBase
	for _, f := range m.Funcs {
		for _, in := range f.Instrs {
			seq, err := expand(in)
			if err != nil {
				return nil, fmt.Errorf("cfg: expanding %s at %#x: %w", in.Op, in.Addr, err)
			}
			if seq == nil {
				seq = []isa.Instr{in}
			}
			out[in.Addr] = addr
			for i := range seq {
				addr += uint64(isa.EncodedSize(seq[i]))
			}
		}
	}
	return out, nil
}
