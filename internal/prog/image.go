package prog

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"sort"

	"fpmix/internal/isa"
)

// Image layout (all integers little-endian):
//
//	magic     "FPMX" (4 bytes)
//	version   uint16
//	nameLen   uint16, name bytes
//	entry     uint64
//	memSize   uint64
//	codeBase  uint64
//	codeLen   uint32, code bytes
//	dataLen   uint32, data bytes
//	nsyms     uint32, then per symbol:
//	    nameLen uint16, name bytes, addr uint64, end uint64
//	ndebug    uint32, then per entry (format version 2):
//	    addr uint64, labelLen uint16, label bytes
//	nregions  uint32, then per region (format version 3):
//	    nameLen uint16, name bytes, off int32, size int32
//
// The code bytes are raw encoded instructions; Load re-decodes them and
// rebuilds per-function instruction lists from the symbol table, failing if
// any byte range does not parse — the moral equivalent of instruction
// parsing in a real binary-analysis stack.

var imageMagic = [4]byte{'F', 'P', 'M', 'X'}

// ImageVersion is the serialization format version. Load also accepts
// version 2 images (everything up to the data-region table).
const ImageVersion = 3

// ErrBadImage reports a malformed serialized image.
var ErrBadImage = errors.New("prog: bad image")

// Save serializes m to its byte-image form.
func Save(m *Module) ([]byte, error) {
	if err := m.Validate(); err != nil {
		return nil, err
	}
	var code []byte
	next := CodeBase
	for _, f := range m.Funcs {
		// Pad inter-function gaps with NOPs so the code segment is a single
		// contiguous decodable range.
		for next < f.Addr {
			var err error
			code, err = isa.Encode(code, isa.I(isa.NOP))
			if err != nil {
				return nil, err
			}
			next = CodeBase + uint64(len(code))
			if next > f.Addr {
				return nil, fmt.Errorf("%w: function %s not alignable at %#x", ErrBadImage, f.Name, f.Addr)
			}
		}
		for _, in := range f.Instrs {
			var err error
			code, err = isa.Encode(code, in)
			if err != nil {
				return nil, fmt.Errorf("prog: encoding %s at %#x: %w", in.Op, in.Addr, err)
			}
		}
		next = CodeBase + uint64(len(code))
	}

	var buf bytes.Buffer
	buf.Write(imageMagic[:])
	writeU16(&buf, ImageVersion)
	writeU16(&buf, uint16(len(m.Name)))
	buf.WriteString(m.Name)
	writeU64(&buf, m.Entry)
	writeU64(&buf, m.MemSize)
	writeU64(&buf, CodeBase)
	writeU32(&buf, uint32(len(code)))
	buf.Write(code)
	writeU32(&buf, uint32(len(m.Data)))
	buf.Write(m.Data)
	writeU32(&buf, uint32(len(m.Funcs)))
	for _, f := range m.Funcs {
		writeU16(&buf, uint16(len(f.Name)))
		buf.WriteString(f.Name)
		writeU64(&buf, f.Addr)
		writeU64(&buf, f.End)
	}
	// Debug entries, sorted by address for determinism.
	addrs := make([]uint64, 0, len(m.Debug))
	for a := range m.Debug {
		addrs = append(addrs, a)
	}
	sort.Slice(addrs, func(i, j int) bool { return addrs[i] < addrs[j] })
	writeU32(&buf, uint32(len(addrs)))
	for _, a := range addrs {
		writeU64(&buf, a)
		writeU16(&buf, uint16(len(m.Debug[a])))
		buf.WriteString(m.Debug[a])
	}
	writeU32(&buf, uint32(len(m.Regions)))
	for _, rg := range m.Regions {
		writeU16(&buf, uint16(len(rg.Name)))
		buf.WriteString(rg.Name)
		writeU32(&buf, uint32(rg.Off))
		writeU32(&buf, uint32(rg.Size))
	}
	return buf.Bytes(), nil
}

// Load parses a serialized image back into a Module, re-decoding all code
// bytes.
func Load(img []byte) (*Module, error) {
	r := &reader{buf: img}
	var magic [4]byte
	r.bytes(magic[:])
	if magic != imageMagic {
		return nil, fmt.Errorf("%w: bad magic", ErrBadImage)
	}
	version := r.u16()
	if version != 2 && version != ImageVersion {
		return nil, fmt.Errorf("%w: version %d", ErrBadImage, version)
	}
	m := &Module{}
	m.Name = r.str(int(r.u16()))
	m.Entry = r.u64()
	m.MemSize = r.u64()
	codeBase := r.u64()
	if codeBase != CodeBase {
		return nil, fmt.Errorf("%w: code base %#x", ErrBadImage, codeBase)
	}
	code := make([]byte, r.u32())
	r.bytes(code)
	m.Data = make([]byte, r.u32())
	r.bytes(m.Data)
	nsyms := int(r.u32())
	type sym struct {
		name      string
		addr, end uint64
	}
	syms := make([]sym, 0, nsyms)
	for i := 0; i < nsyms; i++ {
		s := sym{name: r.str(int(r.u16()))}
		s.addr = r.u64()
		s.end = r.u64()
		syms = append(syms, s)
	}
	if nd := int(r.u32()); nd > 0 && r.err == nil {
		m.Debug = make(map[uint64]string, nd)
		for i := 0; i < nd; i++ {
			a := r.u64()
			m.Debug[a] = r.str(int(r.u16()))
		}
	}
	if version >= 3 {
		for i, nr := 0, int(r.u32()); i < nr && r.err == nil; i++ {
			rg := Region{Name: r.str(int(r.u16()))}
			rg.Off = int32(r.u32())
			rg.Size = int32(r.u32())
			m.Regions = append(m.Regions, rg)
		}
	}
	if r.err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadImage, r.err)
	}

	instrs, err := isa.DecodeAll(code, CodeBase)
	if err != nil {
		return nil, fmt.Errorf("prog: decoding code: %w", err)
	}
	sort.Slice(syms, func(i, j int) bool { return syms[i].addr < syms[j].addr })
	idx := 0
	for _, s := range syms {
		f := &Func{Name: s.name, Addr: s.addr, End: s.end}
		for idx < len(instrs) && instrs[idx].Addr < s.addr {
			idx++ // skip padding
		}
		for idx < len(instrs) && instrs[idx].Addr < s.end {
			f.Instrs = append(f.Instrs, instrs[idx])
			idx++
		}
		if len(f.Instrs) == 0 {
			return nil, fmt.Errorf("%w: function %s [%#x,%#x) has no instructions", ErrBadImage, s.name, s.addr, s.end)
		}
		m.Funcs = append(m.Funcs, f)
	}
	if err := m.Validate(); err != nil {
		return nil, err
	}
	return m, nil
}

func writeU16(b *bytes.Buffer, v uint16) {
	var t [2]byte
	binary.LittleEndian.PutUint16(t[:], v)
	b.Write(t[:])
}

func writeU32(b *bytes.Buffer, v uint32) {
	var t [4]byte
	binary.LittleEndian.PutUint32(t[:], v)
	b.Write(t[:])
}

func writeU64(b *bytes.Buffer, v uint64) {
	var t [8]byte
	binary.LittleEndian.PutUint64(t[:], v)
	b.Write(t[:])
}

type reader struct {
	buf []byte
	pos int
	err error
}

func (r *reader) bytes(dst []byte) {
	if r.err != nil {
		return
	}
	if r.pos+len(dst) > len(r.buf) {
		r.err = errors.New("truncated")
		return
	}
	copy(dst, r.buf[r.pos:])
	r.pos += len(dst)
}

func (r *reader) str(n int) string {
	if r.err != nil || n < 0 {
		return ""
	}
	if r.pos+n > len(r.buf) {
		r.err = errors.New("truncated")
		return ""
	}
	s := string(r.buf[r.pos : r.pos+n])
	r.pos += n
	return s
}

func (r *reader) u16() uint16 {
	var t [2]byte
	r.bytes(t[:])
	return binary.LittleEndian.Uint16(t[:])
}

func (r *reader) u32() uint32 {
	var t [4]byte
	r.bytes(t[:])
	return binary.LittleEndian.Uint32(t[:])
}

func (r *reader) u64() uint64 {
	var t [8]byte
	r.bytes(t[:])
	return binary.LittleEndian.Uint64(t[:])
}
