// Package prog defines the program container and the serialized binary
// image format that the fpmix toolchain operates on.
//
// A Module is the in-memory view: a list of functions, each holding a flat
// instruction sequence with assigned addresses, plus a data segment and an
// entry point. The Image form is the on-disk/byte view; loading an image
// re-decodes the code bytes instruction by instruction, the same way the
// paper's framework re-parses real binaries with XED before analyzing or
// rewriting them.
package prog

import (
	"errors"
	"fmt"
	"sort"

	"fpmix/internal/isa"
)

// Standard memory layout for fpmix programs. Code lives at CodeBase and is
// fetched from the decoded image (it is not readable as data); the data
// segment starts at DataBase; the stack grows down from the top of memory.
const (
	CodeBase = uint64(0x1000)
	DataBase = uint64(0x10_0000)
)

// Func is a named contiguous code region.
type Func struct {
	Name   string
	Addr   uint64 // address of first instruction
	End    uint64 // address one past the last instruction
	Instrs []isa.Instr
}

// Module is a complete program.
type Module struct {
	Name    string
	Funcs   []*Func // sorted by address
	Entry   uint64  // address of the first executed instruction
	Data    []byte  // initial contents of the data segment at DataBase
	MemSize uint64  // total memory size in bytes (data + heap + stack)

	// Debug optionally maps instruction addresses to source labels (the
	// analog of DWARF line info; the configuration GUI uses it to show
	// "the corresponding source code location for a particular
	// instruction", paper §2.1). May be nil.
	Debug map[uint64]string

	// Regions optionally records named data-segment allocations — the
	// analog of object symbols with sizes. Each entry is an array's byte
	// extent relative to the data-segment base register; the dataflow
	// analyses use disjoint extents to separate arrays that would
	// otherwise share one summary memory cell. May be nil (analyses then
	// fall back to the fully conservative memory model).
	Regions []Region
}

// Region is a named allocation in the data segment: [Off, Off+Size)
// bytes relative to the data-segment base.
type Region struct {
	Name string
	Off  int32
	Size int32
}

// Validate checks structural invariants: functions sorted, non-overlapping,
// addresses consistent with instruction encodings, and the entry point
// landing on an instruction.
func (m *Module) Validate() error {
	if m.MemSize == 0 {
		return errors.New("prog: zero MemSize")
	}
	if DataBase+uint64(len(m.Data)) > m.MemSize {
		return fmt.Errorf("prog: data segment (%d bytes) exceeds MemSize %d", len(m.Data), m.MemSize)
	}
	prevEnd := CodeBase
	entryOK := false
	for i, f := range m.Funcs {
		if f.Addr < prevEnd {
			return fmt.Errorf("prog: function %s at %#x overlaps previous (end %#x)", f.Name, f.Addr, prevEnd)
		}
		addr := f.Addr
		for _, in := range f.Instrs {
			if in.Addr != addr {
				return fmt.Errorf("prog: %s: instruction at %#x recorded as %#x", f.Name, addr, in.Addr)
			}
			if in.Addr == m.Entry {
				entryOK = true
			}
			addr += uint64(isa.EncodedSize(in))
		}
		if f.End != addr {
			return fmt.Errorf("prog: %s: End=%#x, computed %#x", f.Name, f.End, addr)
		}
		prevEnd = f.End
		_ = i
	}
	if !entryOK {
		return fmt.Errorf("prog: entry %#x is not an instruction address", m.Entry)
	}
	return nil
}

// FuncAt returns the function containing addr, or nil.
func (m *Module) FuncAt(addr uint64) *Func {
	i := sort.Search(len(m.Funcs), func(i int) bool { return m.Funcs[i].End > addr })
	if i < len(m.Funcs) && m.Funcs[i].Addr <= addr {
		return m.Funcs[i]
	}
	return nil
}

// FuncByName returns the named function, or nil.
func (m *Module) FuncByName(name string) *Func {
	for _, f := range m.Funcs {
		if f.Name == name {
			return f
		}
	}
	return nil
}

// Instructions returns all instructions in address order.
func (m *Module) Instructions() []isa.Instr {
	var out []isa.Instr
	for _, f := range m.Funcs {
		out = append(out, f.Instrs...)
	}
	return out
}

// InstrAt returns the instruction at exactly addr.
func (m *Module) InstrAt(addr uint64) (isa.Instr, bool) {
	f := m.FuncAt(addr)
	if f == nil {
		return isa.Instr{}, false
	}
	i := sort.Search(len(f.Instrs), func(i int) bool { return f.Instrs[i].Addr >= addr })
	if i < len(f.Instrs) && f.Instrs[i].Addr == addr {
		return f.Instrs[i], true
	}
	return isa.Instr{}, false
}

// Candidates returns the addresses of all double-precision candidate
// instructions (the set Pd), in address order.
func (m *Module) Candidates() []uint64 {
	var out []uint64
	for _, f := range m.Funcs {
		for _, in := range f.Instrs {
			if isa.IsCandidate(in.Op) {
				out = append(out, in.Addr)
			}
		}
	}
	return out
}

// Clone returns a deep copy of the module.
func (m *Module) Clone() *Module {
	c := &Module{
		Name:    m.Name,
		Entry:   m.Entry,
		Data:    append([]byte(nil), m.Data...),
		MemSize: m.MemSize,
	}
	if m.Debug != nil {
		c.Debug = make(map[uint64]string, len(m.Debug))
		for a, s := range m.Debug {
			c.Debug[a] = s
		}
	}
	c.Regions = append([]Region(nil), m.Regions...)
	for _, f := range m.Funcs {
		c.Funcs = append(c.Funcs, &Func{
			Name:   f.Name,
			Addr:   f.Addr,
			End:    f.End,
			Instrs: append([]isa.Instr(nil), f.Instrs...),
		})
	}
	return c
}
