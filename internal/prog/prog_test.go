package prog

import (
	"reflect"
	"testing"

	"fpmix/internal/isa"
)

// testModule builds a tiny two-function module:
//
//	main:  movri rax, 1; call helper; halt
//	helper: addsd xmm0, xmm1; mulsd xmm0, xmm0; ret
func testModule(t *testing.T) *Module {
	t.Helper()
	main := &Func{Name: "main", Instrs: []isa.Instr{
		isa.I(isa.MOVRI, isa.Gpr(isa.RAX), isa.Imm(1)),
		isa.I(isa.CALL, isa.Imm(0)), // patched below
		isa.I(isa.HALT),
	}}
	helper := &Func{Name: "helper", Instrs: []isa.Instr{
		isa.I(isa.ADDSD, isa.Xmm(0), isa.Xmm(1)),
		isa.I(isa.MULSD, isa.Xmm(0), isa.Xmm(0)),
		isa.I(isa.RET),
	}}
	m, err := Build("test", []*Func{main, helper}, []byte{1, 2, 3}, 1<<21, "main")
	if err != nil {
		t.Fatal(err)
	}
	// Patch the call target now that layout is known.
	main.Instrs[1].A.Imm = int64(helper.Addr)
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	return m
}

func TestBuildLayout(t *testing.T) {
	m := testModule(t)
	if m.Funcs[0].Addr != CodeBase {
		t.Errorf("main at %#x, want %#x", m.Funcs[0].Addr, CodeBase)
	}
	if m.Funcs[1].Addr != m.Funcs[0].End {
		t.Errorf("helper at %#x, want %#x", m.Funcs[1].Addr, m.Funcs[0].End)
	}
	if m.Entry != CodeBase {
		t.Errorf("entry %#x", m.Entry)
	}
}

func TestBuildUnknownEntry(t *testing.T) {
	_, err := Build("x", []*Func{{Name: "f", Instrs: []isa.Instr{isa.I(isa.RET)}}}, nil, 4096, "nope")
	if err == nil {
		t.Fatal("want error for unknown entry")
	}
}

func TestFuncLookup(t *testing.T) {
	m := testModule(t)
	h := m.FuncByName("helper")
	if h == nil {
		t.Fatal("helper not found")
	}
	if got := m.FuncAt(h.Addr); got != h {
		t.Error("FuncAt(helper.Addr) != helper")
	}
	if got := m.FuncAt(h.End - 1); got != h {
		t.Error("FuncAt inside helper failed")
	}
	if got := m.FuncAt(h.End); got != nil {
		t.Errorf("FuncAt past end = %v", got.Name)
	}
	if got := m.FuncAt(0); got != nil {
		t.Error("FuncAt(0) should be nil")
	}
	if m.FuncByName("nope") != nil {
		t.Error("FuncByName(nope) should be nil")
	}
}

func TestInstrAt(t *testing.T) {
	m := testModule(t)
	h := m.FuncByName("helper")
	in, ok := m.InstrAt(h.Addr)
	if !ok || in.Op != isa.ADDSD {
		t.Fatalf("InstrAt(helper.Addr) = %v, %v", in.Op, ok)
	}
	if _, ok := m.InstrAt(h.Addr + 1); ok {
		t.Error("InstrAt mid-instruction should fail")
	}
}

func TestCandidates(t *testing.T) {
	m := testModule(t)
	c := m.Candidates()
	if len(c) != 2 {
		t.Fatalf("candidates = %d, want 2", len(c))
	}
	in, _ := m.InstrAt(c[0])
	if in.Op != isa.ADDSD {
		t.Errorf("first candidate %v", in.Op)
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	m := testModule(t)
	img, err := Save(m)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Load(img)
	if err != nil {
		t.Fatal(err)
	}
	if got.Name != m.Name || got.Entry != m.Entry || got.MemSize != m.MemSize {
		t.Error("header mismatch")
	}
	if !reflect.DeepEqual(got.Data, m.Data) {
		t.Error("data mismatch")
	}
	if len(got.Funcs) != len(m.Funcs) {
		t.Fatalf("func count %d != %d", len(got.Funcs), len(m.Funcs))
	}
	for i := range m.Funcs {
		if !reflect.DeepEqual(got.Funcs[i], m.Funcs[i]) {
			t.Errorf("func %d mismatch:\n got %+v\nwant %+v", i, got.Funcs[i], m.Funcs[i])
		}
	}
}

func TestLoadRejectsCorruption(t *testing.T) {
	m := testModule(t)
	img, err := Save(m)
	if err != nil {
		t.Fatal(err)
	}
	// Bad magic.
	bad := append([]byte(nil), img...)
	bad[0] = 'X'
	if _, err := Load(bad); err == nil {
		t.Error("bad magic accepted")
	}
	// Truncation at every prefix length must error, not panic.
	for n := 0; n < len(img)-1; n += 7 {
		if _, err := Load(img[:n]); err == nil {
			t.Errorf("truncated image (%d bytes) accepted", n)
		}
	}
	// Corrupt a code byte (opcode of first instruction) to an invalid value.
	bad2 := append([]byte(nil), img...)
	// Find the code section: after magic(4)+ver(2)+nameLen(2)+name+entry(8)+mem(8)+base(8)+len(4).
	off := 4 + 2 + 2 + len(m.Name) + 8 + 8 + 8 + 4
	bad2[off] = 0xff
	bad2[off+1] = 0xff
	if _, err := Load(bad2); err == nil {
		t.Error("corrupt code accepted")
	}
}

func TestValidateCatchesBadStructure(t *testing.T) {
	m := testModule(t)
	m.Entry = 3
	if err := m.Validate(); err == nil {
		t.Error("bad entry accepted")
	}
	m = testModule(t)
	m.Funcs[1].Addr = m.Funcs[0].Addr
	if err := m.Validate(); err == nil {
		t.Error("overlapping functions accepted")
	}
	m = testModule(t)
	m.Funcs[1].End += 4
	if err := m.Validate(); err == nil {
		t.Error("bad End accepted")
	}
	m = testModule(t)
	m.MemSize = 0
	if err := m.Validate(); err == nil {
		t.Error("zero MemSize accepted")
	}
	m = testModule(t)
	m.Data = make([]byte, 1)
	m.MemSize = DataBase // data extends past MemSize
	if err := m.Validate(); err == nil {
		t.Error("data past MemSize accepted")
	}
}

func TestClone(t *testing.T) {
	m := testModule(t)
	c := m.Clone()
	if !reflect.DeepEqual(m, c) {
		t.Fatal("clone differs")
	}
	c.Funcs[0].Instrs[0].A.Imm = 99
	c.Data[0] = 42
	if m.Funcs[0].Instrs[0].A.Imm == 99 || m.Data[0] == 42 {
		t.Error("clone shares storage with original")
	}
}

func TestInstructionsOrder(t *testing.T) {
	m := testModule(t)
	all := m.Instructions()
	if len(all) != 6 {
		t.Fatalf("len = %d", len(all))
	}
	for i := 1; i < len(all); i++ {
		if all[i].Addr <= all[i-1].Addr {
			t.Fatal("instructions not in address order")
		}
	}
}
