package prog

import (
	"fmt"

	"fpmix/internal/isa"
)

// Build lays out funcs contiguously starting at CodeBase, assigning
// instruction and function addresses, and returns the assembled module.
// Branch-target immediates are laid down as-is; callers that use symbolic
// labels (such as the hl compiler) must patch them after layout — operand
// sizes do not depend on immediate values, so patching never moves code.
func Build(name string, funcs []*Func, data []byte, memSize uint64, entry string) (*Module, error) {
	m := &Module{Name: name, Data: data, MemSize: memSize}
	addr := CodeBase
	for _, f := range funcs {
		f.Addr = addr
		for i := range f.Instrs {
			f.Instrs[i].Addr = addr
			addr += uint64(isa.EncodedSize(f.Instrs[i]))
		}
		f.End = addr
		m.Funcs = append(m.Funcs, f)
	}
	ef := m.FuncByName(entry)
	if ef == nil {
		return nil, fmt.Errorf("prog: entry function %q not found", entry)
	}
	m.Entry = ef.Addr
	return m, nil
}
