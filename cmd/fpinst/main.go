// Command fpinst rewrites a program image according to a precision
// configuration, producing a new runnable image in which every selected
// double-precision instruction has been replaced with its single-precision
// snippet (paper §2.3-2.4).
//
//	fpinst -in cg.fpx -config cg.cfg -o cg-mixed.fpx
//	fpinst -in cg.fpx -config cg.cfg -run
//
// With -run the instrumented program is executed immediately and its
// outputs and modeled cycles are printed next to the original's.
package main

import (
	"flag"
	"fmt"
	"os"

	"fpmix/internal/config"
	"fpmix/internal/prog"
	"fpmix/internal/replace"
	"fpmix/internal/verify"
	"fpmix/internal/vm"
)

func main() {
	in := flag.String("in", "", "input program image")
	cfgPath := flag.String("config", "", "precision configuration file")
	out := flag.String("o", "", "write the instrumented image here")
	run := flag.Bool("run", false, "execute original and instrumented images and compare")
	flag.Parse()

	if *in == "" {
		flag.Usage()
		os.Exit(2)
	}
	img, err := os.ReadFile(*in)
	if err != nil {
		fatal(err)
	}
	m, err := prog.Load(img)
	if err != nil {
		fatal(err)
	}

	var c *config.Config
	if *cfgPath != "" {
		f, err := os.Open(*cfgPath)
		if err != nil {
			fatal(err)
		}
		c, err = config.Read(f)
		f.Close()
		if err != nil {
			fatal(err)
		}
	} else {
		// Default: all-double wrapping (the overhead base case).
		c, err = config.FromModule(m)
		if err != nil {
			fatal(err)
		}
		c.SetAll(config.Double)
	}

	inst, err := replace.Instrument(m, c, replace.InstrumentOptions{})
	if err != nil {
		fatal(err)
	}
	if *out != "" {
		outImg, err := prog.Save(inst)
		if err != nil {
			fatal(err)
		}
		if err := os.WriteFile(*out, outImg, 0o644); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "fpinst: wrote %s (%d -> %d bytes)\n", *out, len(img), len(outImg))
	}
	if *run {
		orig, err := execute(m)
		if err != nil {
			fatal(fmt.Errorf("original: %w", err))
		}
		mixed, err := execute(inst)
		if err != nil {
			fatal(fmt.Errorf("instrumented: %w", err))
		}
		fmt.Printf("%-14s %-22s %-22s\n", "", "original", "instrumented")
		fmt.Printf("%-14s %-22d %-22d\n", "cycles", orig.Cycles, mixed.Cycles)
		fmt.Printf("%-14s %-22s %.2fX\n", "overhead", "", float64(mixed.Cycles)/float64(orig.Cycles))
		a, b := verify.Decode(orig.Out), verify.Decode(mixed.Out)
		for i := range a {
			got := "?"
			if i < len(b) {
				got = fmt.Sprintf("%-22.12g", b[i])
			}
			fmt.Printf("out[%d]%8s %-22.12g %s\n", i, "", a[i], got)
		}
	}
	if *out == "" && !*run {
		flag.Usage()
		os.Exit(2)
	}
}

func execute(m *prog.Module) (*vm.Machine, error) {
	mach, err := vm.New(m)
	if err != nil {
		return nil, err
	}
	if err := mach.Run(); err != nil {
		return nil, err
	}
	return mach, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "fpinst:", err)
	os.Exit(1)
}
