// Command fpmixd is the long-lived mixed-precision search service: an
// HTTP/JSON server over a durable job store, a shared cross-job verdict
// cache and a pool of in-process evaluation workers.
//
// Submitted jobs (a registered kernel, or an uploaded program image
// plus a verifier spec) run the same breadth-first search fpsearch
// runs, with the coordinator in-process and every evaluation unit
// sharded across the worker fleet under lease/heartbeat scheduling —
// the composed final configuration is byte-identical to a serial run.
// Jobs are durable: every settled verdict lands in a per-job
// fingerprint-validated journal, so a killed or restarted server
// resumes its running jobs instead of recomputing them, and evaluated
// verdicts are shared between jobs over the same program image through
// the verdict cache.
//
//	fpmixd -addr :8080 -dir /var/lib/fpmixd -workers 8
//
// The API (see internal/service for the handler):
//
//	POST /api/v1/jobs              submit (body: job spec JSON)
//	GET  /api/v1/jobs              list jobs
//	GET  /api/v1/jobs/{id}         status (+ summary when done)
//	POST /api/v1/jobs/{id}/cancel  cancel
//	GET  /api/v1/jobs/{id}/events  progress stream (ndjson)
//	GET  /api/v1/jobs/{id}/result  final configuration download
//	GET  /api/v1/workers           worker registry
//	POST /api/v1/workers/{id}/kill chaos: report a worker dead
//	GET  /api/v1/healthz           liveness
//	POST /api/v1/fleet/...         remote-worker protocol (fpmixworker)
//
// fpmixctl is the matching client; fpmixworker joins the evaluation
// fleet from other processes or machines (run fpmixd -workers 0 for a
// remote-only daemon). On SIGINT/SIGTERM the daemon drains in-flight
// remote units up to -draintimeout so their verdicts journal, then
// requeues the rest and exits; the next incarnation resumes.
package main

import (
	"context"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"fpmix/internal/service"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:8606", "listen address")
	dir := flag.String("dir", "fpmixd.state", "job store directory (journals, results, verdict cache)")
	workers := flag.Int("workers", 4, "in-process evaluation workers (0 = remote-only: all evaluation on fpmixworker processes)")
	drain := flag.Duration("draintimeout", 5*time.Second, "graceful-shutdown wait for in-flight remote units before requeueing them")
	flag.Parse()

	w := *workers
	if w == 0 {
		w = -1 // service.Options: negative = zero in-process workers
	}
	srv, err := service.New(service.Options{Dir: *dir, Workers: w, DrainTimeout: *drain})
	if err != nil {
		fatal(err)
	}
	if rec := srv.Store().Recovered(); len(rec) > 0 {
		fmt.Fprintf(os.Stderr, "fpmixd: recovered %d interrupted job(s): %v\n", len(rec), rec)
	}

	hs := &http.Server{Addr: *addr, Handler: srv.Handler()}
	errc := make(chan error, 1)
	go func() { errc <- hs.ListenAndServe() }()
	fmt.Fprintf(os.Stderr, "fpmixd: serving on %s (store %s, %d workers)\n", *addr, *dir, *workers)

	// SIGINT/SIGTERM shut down gracefully: running jobs re-queue with
	// their journals intact, so the next incarnation resumes them.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	select {
	case err := <-errc:
		fatal(err)
	case <-ctx.Done():
	}
	fmt.Fprintln(os.Stderr, "fpmixd: shutting down, re-queueing running jobs")
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	hs.Shutdown(shutdownCtx)
	if err := srv.Close(); err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "fpmixd:", err)
	os.Exit(1)
}
