// Command fpdump disassembles a program image: per-function instruction
// listings in the AT&T-style syntax of the configuration files, with
// double-precision replacement candidates marked — the raw view under
// the configuration tree.
//
//	fpdump -in cg.fpx
//	fpdump -bench cg -class W -func matvec
package main

import (
	"flag"
	"fmt"
	"os"

	"fpmix/internal/cfg"
	"fpmix/internal/isa"
	"fpmix/internal/kernels"
	"fpmix/internal/prog"
)

func main() {
	in := flag.String("in", "", "program image to disassemble")
	bench := flag.String("bench", "", "benchmark to build instead of reading an image")
	class := flag.String("class", "W", "input class")
	fnName := flag.String("func", "", "restrict the listing to one function")
	flag.Parse()

	var m *prog.Module
	switch {
	case *in != "":
		img, err := os.ReadFile(*in)
		if err != nil {
			fatal(err)
		}
		m, err = prog.Load(img)
		if err != nil {
			fatal(err)
		}
	case *bench != "":
		b, err := kernels.Get(*bench, kernels.Class(*class))
		if err != nil {
			fatal(err)
		}
		m = b.Module
	default:
		flag.Usage()
		os.Exit(2)
	}

	g, err := cfg.Build(m)
	if err != nil {
		fatal(err)
	}
	total, cands := 0, 0
	for _, fg := range g.Funcs {
		if *fnName != "" && fg.Func.Name != *fnName {
			continue
		}
		fmt.Printf("\n%s:  [%#x, %#x)  %d blocks\n",
			fg.Func.Name, fg.Func.Addr, fg.Func.End, len(fg.Blocks))
		for _, b := range fg.Blocks {
			fmt.Printf("  block %#x:\n", b.Addr)
			for _, ins := range b.Instrs {
				mark := " "
				if isa.IsCandidate(ins.Op) {
					mark = "*"
					cands++
				}
				total++
				src := ""
				if lbl, ok := m.Debug[ins.Addr]; ok {
					src = "    ; " + lbl
				}
				fmt.Printf("  %s %#08x  %-34s%s\n", mark, ins.Addr, isa.Disasm(ins), src)
			}
		}
	}
	fmt.Printf("\n%d instructions, %d double-precision candidates (*)\n", total, cands)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "fpdump:", err)
	os.Exit(1)
}
