// Command fpdump disassembles a program image: per-function instruction
// listings in the AT&T-style syntax of the configuration files, with
// double-precision replacement candidates marked — the raw view under
// the configuration tree. Candidates carry the dataflow analysis'
// clean/flagged/pruned marks, -conf overlays a configuration file's
// effective precisions and classification notes, and -shadow overlays a
// sensitivity profile's per-instruction error/cancellation marks so
// search results can be inspected against both analyses.
//
//	fpdump -in cg.fpx
//	fpdump -bench cg -class W -func matvec
//	fpdump -bench mg -class W -conf mg-final.cfg
//	fpdump -bench ep -class W -shadow ep.shadow
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"fpmix/internal/cfg"
	"fpmix/internal/config"
	"fpmix/internal/dataflow"
	"fpmix/internal/isa"
	"fpmix/internal/kernels"
	"fpmix/internal/prog"
	"fpmix/internal/shadow"
)

func main() {
	in := flag.String("in", "", "program image to disassemble")
	bench := flag.String("bench", "", "benchmark to build instead of reading an image")
	class := flag.String("class", "W", "input class")
	fnName := flag.String("func", "", "restrict the listing to one function")
	confPath := flag.String("conf", "", "overlay a configuration file's effective precisions and notes")
	shadowPath := flag.String("shadow", "", "overlay a sensitivity profile's error/cancellation marks")
	flag.Parse()

	var m *prog.Module
	switch {
	case *in != "":
		img, err := os.ReadFile(*in)
		if err != nil {
			fatal(err)
		}
		m, err = prog.Load(img)
		if err != nil {
			fatal(err)
		}
	case *bench != "":
		b, err := kernels.Get(*bench, kernels.Class(*class))
		if err != nil {
			fatal(err)
		}
		m = b.Module
	default:
		flag.Usage()
		os.Exit(2)
	}

	var eff map[uint64]config.Precision
	var conf *config.Config
	if *confPath != "" {
		f, err := os.Open(*confPath)
		if err != nil {
			fatal(err)
		}
		conf, err = config.Read(f)
		f.Close()
		if err != nil {
			fatal(err)
		}
		eff = conf.Effective()
	}

	var sh *shadow.Profile
	if *shadowPath != "" {
		f, err := os.Open(*shadowPath)
		if err != nil {
			fatal(err)
		}
		sh, err = shadow.Read(f)
		f.Close()
		if err != nil {
			fatal(err)
		}
	}

	// Analysis marks are best-effort: an unanalyzable image (no entry
	// mapping, say) falls back to the plain listing.
	var ana *dataflow.Result
	if r, err := dataflow.Analyze(m); err == nil {
		ana = r
	}

	g, err := cfg.Build(m)
	if err != nil {
		fatal(err)
	}
	total, cands, clean, pruned := 0, 0, 0, 0
	for _, fg := range g.Funcs {
		if *fnName != "" && fg.Func.Name != *fnName {
			continue
		}
		fmt.Printf("\n%s:  [%#x, %#x)  %d blocks\n",
			fg.Func.Name, fg.Func.Addr, fg.Func.End, len(fg.Blocks))
		for _, b := range fg.Blocks {
			fmt.Printf("  block %#x:\n", b.Addr)
			for _, ins := range b.Instrs {
				// The precision and mark columns are fixed-width and
				// written for every line; annotations accumulate as
				// uniformly separated "; …" parts after the disassembly, so
				// a config note with no analysis mark (or any other overlay
				// combination) cannot shift the columns.
				mark, prec := " ", " "
				var notes []string
				if isa.IsCandidate(ins.Op) {
					mark = "*"
					cands++
					if eff != nil {
						if p, ok := eff[ins.Addr]; ok {
							prec = p.String()
						}
					}
					if ana != nil {
						s := ana.Site(ins.Addr)
						var note string
						switch {
						case s.Unsafe:
							note = "pruned (exact-integer sink)"
							pruned++
						case s.CleanInputs:
							note = "clean"
							clean++
						default:
							note = "flagged"
						}
						if s.Dead {
							note += " dead"
						}
						notes = append(notes, note)
					}
				}
				if conf != nil {
					if n := conf.NodeAt(ins.Addr); n != nil && n.Note != "" {
						notes = append(notes, n.Note)
					}
				}
				if sh != nil {
					if r, ok := sh.At(ins.Addr); ok {
						note := fmt.Sprintf("err=%.3g local=%.3g", r.MaxRelErr, r.LocalMaxErr)
						if r.MaxCancelBits > 0 {
							note += fmt.Sprintf(" cancel=%d", r.MaxCancelBits)
						}
						if r.Divergences > 0 {
							note += fmt.Sprintf(" div=%d", r.Divergences)
						}
						notes = append(notes, note)
					}
				}
				total++
				if lbl, ok := m.Debug[ins.Addr]; ok {
					notes = append(notes, lbl)
				}
				ann := ""
				if len(notes) > 0 {
					ann = "    ; " + strings.Join(notes, "  ; ")
				}
				fmt.Printf("  %s%s %#08x  %-34s%s\n", prec, mark, ins.Addr, isa.Disasm(ins), ann)
			}
		}
	}
	fmt.Printf("\n%d instructions, %d double-precision candidates (*): %d clean, %d pruned\n",
		total, cands, clean, pruned)
	if eff != nil {
		fmt.Println("precision column: s=single d=double i=ignore (from -conf)")
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "fpdump:", err)
	os.Exit(1)
}
