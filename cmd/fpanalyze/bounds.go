package main

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"fpmix/internal/errbound"
	"fpmix/internal/hl"
	"fpmix/internal/isa"
	"fpmix/internal/kernels"
	"fpmix/internal/prog"
	"fpmix/internal/shadow"
)

// parseAssumes parses "-assume disp=lo:hi[,disp=lo:hi...]" into range
// seeds for the error-bound analysis.
func parseAssumes(s string) (map[int32][2]float64, error) {
	if s == "" {
		return nil, nil
	}
	out := map[int32][2]float64{}
	for _, part := range strings.Split(s, ",") {
		eq := strings.SplitN(part, "=", 2)
		if len(eq) != 2 {
			return nil, fmt.Errorf("assume %q: want disp=lo:hi", part)
		}
		disp, err := strconv.ParseInt(strings.TrimSpace(eq[0]), 0, 32)
		if err != nil {
			return nil, fmt.Errorf("assume %q: bad displacement: %v", part, err)
		}
		lh := strings.SplitN(eq[1], ":", 2)
		if len(lh) != 2 {
			return nil, fmt.Errorf("assume %q: want disp=lo:hi", part)
		}
		lo, err := strconv.ParseFloat(lh[0], 64)
		if err != nil {
			return nil, fmt.Errorf("assume %q: bad lo: %v", part, err)
		}
		hi, err := strconv.ParseFloat(lh[1], 64)
		if err != nil {
			return nil, fmt.Errorf("assume %q: bad hi: %v", part, err)
		}
		if lo > hi {
			return nil, fmt.Errorf("assume %q: lo > hi", part)
		}
		out[int32(disp)] = [2]float64{lo, hi}
	}
	return out, nil
}

// reportBounds runs the error-bound analysis and prints per-function
// verdicts: proved intervals and grids for exact sites, and the binding
// reason plus culprit-chain error path for the rest. For -bench targets
// it additionally rebuilds the kernel with expression rewriting enabled
// and reports which statements the rewrite flipped to single-safe.
func reportBounds(m *prog.Module, benchName, className, fnName string,
	assumes map[int32][2]float64, verbose bool) (*errbound.Analysis, error) {
	an, err := errbound.Analyze(m, errbound.Options{Ranges: assumes})
	if err != nil {
		return nil, err
	}
	fmt.Printf("\nerror bounds (%s): converged=%v transfers=%d clamped-cells=%d\n",
		an.Format.Name, an.Converged, an.Transfers, an.Clamped)
	fmt.Printf("candidates proved bit-exact in %s: %d of %d\n",
		an.Format.Name, an.Exact(), len(an.Sites))

	for _, f := range m.Funcs {
		if fnName != "" && f.Name != fnName {
			continue
		}
		var proved, unreached, total int
		for _, ins := range f.Instrs {
			sb, ok := an.Sites[ins.Addr]
			if !ok {
				continue
			}
			total++
			if sb.Exact {
				proved++
				if sb.Unreached {
					unreached++
				}
			}
		}
		if total == 0 {
			continue
		}
		fmt.Printf("\nfunc %s: %d/%d proved exact (%d unreached)\n",
			f.Name, proved, total, unreached)
		for _, ins := range f.Instrs {
			sb, ok := an.Sites[ins.Addr]
			if !ok {
				continue
			}
			if !verbose && !sb.Exact {
				continue
			}
			fmt.Printf("  %#08x  %-30s %s\n", ins.Addr, isa.Disasm(ins), verdictLine(m, an, sb))
		}
	}
	if benchName != "" {
		reportRewriteFlips(m, an, benchName, className)
	}
	return an, nil
}

// verdictLine renders one site verdict with its proved facts or its
// binding error path.
func verdictLine(m *prog.Module, an *errbound.Analysis, sb errbound.SiteBound) string {
	if sb.Unreached {
		return "EXACT (unreached)"
	}
	if sb.Exact {
		s := fmt.Sprintf("EXACT  [%g, %g]", sb.Lo, sb.Hi)
		if sb.Grid > 0 {
			s += fmt.Sprintf(" grid %g", sb.Grid)
		}
		return s
	}
	s := sb.Reason
	if path := an.Path(sb.Addr, 4); len(path) > 1 {
		var hops []string
		for _, a := range path[1:] {
			hops = append(hops, labelAt(m, a))
		}
		s += "  <- " + strings.Join(hops, " <- ")
	}
	return s
}

// labelAt names an address with its debug label when the module has one.
func labelAt(m *prog.Module, addr uint64) string {
	if lbl, ok := m.Debug[addr]; ok {
		return fmt.Sprintf("%#x (%s)", addr, lbl)
	}
	return fmt.Sprintf("%#x", addr)
}

// siteKey groups candidate sites for cross-module comparison: modules
// rebuilt with rewriting enabled have different addresses, so sites are
// matched by function, source statement, and opcode.
type siteKey struct {
	fn, label string
	op        isa.Op
}

func exactByKey(m *prog.Module, an *errbound.Analysis) map[siteKey][2]int {
	out := map[siteKey][2]int{}
	for _, f := range m.Funcs {
		for _, ins := range f.Instrs {
			sb, ok := an.Sites[ins.Addr]
			if !ok {
				continue
			}
			k := siteKey{fn: f.Name, label: m.Debug[ins.Addr], op: ins.Op}
			c := out[k]
			c[1]++
			if sb.Exact {
				c[0]++
			}
			out[k] = c
		}
	}
	return out
}

// reportRewriteFlips rebuilds the benchmark with expression rewriting
// enabled, re-analyzes it, and lists the statements whose candidate
// sites the rewrite flipped to fully proved.
func reportRewriteFlips(m *prog.Module, an *errbound.Analysis, benchName, className string) {
	prev := hl.SetDefaultRewrite(true)
	b, err := kernels.Get(benchName, kernels.Class(className))
	hl.SetDefaultRewrite(prev)
	if err != nil {
		fmt.Printf("\nrewrite comparison unavailable: %v\n", err)
		return
	}
	ran, err := errbound.Analyze(b.Module, errbound.Options{})
	if err != nil {
		fmt.Printf("\nrewrite comparison unavailable: %v\n", err)
		return
	}
	base := exactByKey(m, an)
	rew := exactByKey(b.Module, ran)
	var flipped []string
	for k, rc := range rew {
		bc, ok := base[k]
		if !ok || rc[1] == 0 {
			continue
		}
		// Flipped: every site of the statement proves under rewriting,
		// while the baseline had unproved ones.
		if rc[0] == rc[1] && bc[0] < bc[1] {
			flipped = append(flipped, fmt.Sprintf("%s: %q %s (%d/%d -> %d/%d exact)",
				k.fn, k.label, k.op, bc[0], bc[1], rc[0], rc[1]))
		}
	}
	sort.Strings(flipped)
	fmt.Printf("\nrewriting: proved %d of %d sites (baseline %d of %d)\n",
		ran.Exact(), len(ran.Sites), an.Exact(), len(an.Sites))
	if len(flipped) == 0 {
		fmt.Println("rewriting flipped no statement to single-safe")
		return
	}
	fmt.Printf("statements flipped to single-safe by rewriting: %d\n", len(flipped))
	for _, s := range flipped {
		fmt.Printf("  %s\n", s)
	}
}

// crossCheckShadow compares the bounds pass against the shadow
// sensitivity profile where both have opinions: a site proved bit-exact
// must introduce zero local error when its true operands are rounded to
// single for one step, so any proved site with a nonzero local shadow
// error is a suspect — in the analysis, or in the shadow's sampling.
// Suspects are reported ranked by local error, not treated as failures:
// the cross-check is a lead generator, while the differential elision
// check above stays the hard gate.
func crossCheckShadow(m *prog.Module, an *errbound.Analysis, name string, maxSteps uint64) error {
	prof, err := shadow.Collect(name, m, maxSteps)
	if err != nil {
		return err
	}
	type suspect struct {
		addr     uint64
		localErr float64
		execs    uint64
	}
	var suspects []suspect
	checked := 0
	for _, addr := range an.SortedAddrs() {
		if !an.ExactAt(addr) {
			continue
		}
		rec, ok := prof.At(addr)
		if !ok || rec.Execs == 0 {
			continue // the shadow has no opinion on unexecuted sites
		}
		checked++
		if rec.LocalMaxErr > 0 || rec.LocalDivergences > 0 {
			suspects = append(suspects, suspect{addr: addr, localErr: rec.LocalMaxErr, execs: rec.Execs})
		}
	}
	sort.Slice(suspects, func(i, j int) bool {
		if suspects[i].localErr != suspects[j].localErr {
			return suspects[i].localErr > suspects[j].localErr
		}
		return suspects[i].addr < suspects[j].addr
	})
	fmt.Printf("bounds/shadow cross-check: %d proved sites had shadow samples, %d disagreements\n",
		checked, len(suspects))
	for i, s := range suspects {
		fmt.Printf("  suspect #%d: %s local-err=%.3g execs=%d — %s\n",
			i+1, labelAt(m, s.addr), s.localErr, s.execs, disasmAt(m, s.addr))
	}
	return nil
}
