// Command fpanalyze runs the static dataflow analyses (liveness,
// replaced-flag reachability, exact-integer sink classification) on a
// program and prints per-function reports of what the instrumenter may
// streamline: scratch save/restore elisions, flag-check elisions, and
// candidates pruned from the precision search.
//
//	fpanalyze -bench mg -class W
//	fpanalyze -in ep.fpx -func randlc
//	fpanalyze -bench mg -class W -selfcheck
//
// With -selfcheck it additionally instruments the program twice — once
// fully checked, once analysis-gated — runs both under the VM for the
// all-single and all-double configurations, and reports any output
// divergence as an unsound elision (the count is always printed; CI
// asserts it is zero).
package main

import (
	"flag"
	"fmt"
	"os"

	"fpmix/internal/config"
	"fpmix/internal/dataflow"
	"fpmix/internal/errbound"
	"fpmix/internal/isa"
	"fpmix/internal/kernels"
	"fpmix/internal/prog"
	"fpmix/internal/replace"
	"fpmix/internal/vm"
)

func main() {
	in := flag.String("in", "", "program image to analyze")
	bench := flag.String("bench", "", "benchmark to build instead of reading an image")
	class := flag.String("class", "W", "input class")
	fnName := flag.String("func", "", "restrict the report to one function")
	verbose := flag.Bool("v", false, "list every candidate site")
	selfcheck := flag.Bool("selfcheck", false, "differentially verify the elisions (runs the program four times) and cross-check the bounds pass against the shadow profile")
	bounds := flag.Bool("bounds", false, "run the static error-bound analysis and report per-site proved intervals")
	assume := flag.String("assume", "", "comma-separated range seeds for -bounds: disp=lo:hi[,disp=lo:hi...]")
	flag.Parse()

	var (
		m        *prog.Module
		maxSteps uint64
	)
	switch {
	case *in != "":
		img, err := os.ReadFile(*in)
		if err != nil {
			fatal(err)
		}
		m, err = prog.Load(img)
		if err != nil {
			fatal(err)
		}
	case *bench != "":
		b, err := kernels.Get(*bench, kernels.Class(*class))
		if err != nil {
			fatal(err)
		}
		m = b.Module
		maxSteps = b.MaxSteps
	default:
		flag.Usage()
		os.Exit(2)
	}

	r, err := dataflow.Analyze(m)
	if err != nil {
		fatal(err)
	}

	if r.HasStableBase {
		fmt.Printf("module %s: stable base %%%s, %d memory slots\n",
			m.Name, isa.GPRName(r.StableBase), r.Slots)
	} else {
		fmt.Printf("module %s: no stable base (memory summarized)\n", m.Name)
	}

	var tc, tsd, tci, tun, tdead int
	for _, f := range m.Funcs {
		if *fnName != "" && f.Name != *fnName {
			continue
		}
		var sites []dataflow.Site
		for _, ins := range f.Instrs {
			if !isa.IsCandidate(ins.Op) {
				continue
			}
			sites = append(sites, r.Site(ins.Addr))
		}
		if len(sites) == 0 {
			continue
		}
		var sd, ci, un, dead int
		for _, s := range sites {
			if s.ScratchDead {
				sd++
			}
			if s.CleanInputs {
				ci++
			}
			if s.Unsafe {
				un++
			}
			if s.Dead {
				dead++
			}
		}
		tc += len(sites)
		tsd += sd
		tci += ci
		tun += un
		tdead += dead
		fmt.Printf("\nfunc %s: %d candidates\n", f.Name, len(sites))
		fmt.Printf("  scratch-dead: %-5d clean-inputs: %-5d unsafe: %-5d dead: %d\n",
			sd, ci, un, dead)
		if *verbose {
			for _, ins := range f.Instrs {
				if !isa.IsCandidate(ins.Op) {
					continue
				}
				fmt.Printf("    %#08x  %-34s %s\n", ins.Addr, isa.Disasm(ins), siteMarks(r.Site(ins.Addr)))
			}
		}
	}

	if *fnName == "" {
		fmt.Printf("\nround-trip pairs: %d\n", len(r.Pairs))
		for _, p := range r.Pairs {
			kind := "acyclic"
			if p.Cyclic {
				kind = "cyclic"
			}
			fmt.Printf("  trunc %#x -> widen %#x  (%s)\n", p.Trunc, p.Widen, kind)
		}
		if ua := r.UnsafeAddrs(); len(ua) > 0 {
			fmt.Printf("unsafe sinks (pruned from search): %d\n", len(ua))
			for _, a := range ua {
				fmt.Printf("  %#x  %s\n", a, disasmAt(m, a))
			}
		} else {
			fmt.Println("unsafe sinks (pruned from search): none")
		}
		fmt.Printf("\ntotals: %d candidates, %d scratch-dead, %d clean-inputs, %d unsafe, %d dead\n",
			tc, tsd, tci, tun, tdead)
	}

	var an *errbound.Analysis
	if *bounds || *selfcheck {
		assumes, err := parseAssumes(*assume)
		if err != nil {
			fatal(err)
		}
		benchName := ""
		if *bounds {
			benchName = *bench
		}
		an, err = reportBounds(m, benchName, *class, *fnName, assumes, *verbose)
		if err != nil {
			fatal(err)
		}
	}

	findings := 0
	if *selfcheck {
		findings, err = runSelfcheck(m, maxSteps)
		if err != nil {
			fatal(err)
		}
		// The shadow cross-check reports ranked suspects without
		// failing: local shadow error at a proved-exact site is a lead,
		// not a verdict (see crossCheckShadow).
		if err := crossCheckShadow(m, an, m.Name, maxSteps); err != nil {
			fatal(err)
		}
	}
	fmt.Printf("unsound elisions: %d\n", findings)
	if findings > 0 {
		os.Exit(1)
	}
}

// siteMarks renders a compact per-site summary for the verbose listing.
func siteMarks(s dataflow.Site) string {
	out := ""
	add := func(m string) {
		if out != "" {
			out += " "
		}
		out += m
	}
	if s.ScratchDead {
		add("scratch-dead")
	}
	if s.CleanInputs {
		add("clean")
	}
	if s.Unsafe {
		add("UNSAFE")
	}
	if s.Dead {
		add("dead")
	}
	if out == "" {
		out = "-"
	}
	return out
}

func disasmAt(m *prog.Module, addr uint64) string {
	for _, f := range m.Funcs {
		if addr < f.Addr || addr >= f.End {
			continue
		}
		for _, ins := range f.Instrs {
			if ins.Addr == addr {
				return fmt.Sprintf("%-30s (%s)", isa.Disasm(ins), f.Name)
			}
		}
	}
	return "?"
}

// runSelfcheck instruments the module fully checked and analysis-gated
// for the all-single and all-double configurations, runs all four
// programs, and counts output words that differ between the two builds
// of the same configuration — each one an elision the analysis wrongly
// proved safe.
func runSelfcheck(m *prog.Module, maxSteps uint64) (int, error) {
	findings := 0
	for _, prec := range []config.Precision{config.Single, config.Double} {
		c, err := config.FromModule(m)
		if err != nil {
			return 0, err
		}
		c.SetAll(prec)
		full, err := replace.Instrument(m, c, replace.InstrumentOptions{NoAnalysis: true})
		if err != nil {
			return 0, err
		}
		gated, err := replace.Instrument(m, c, replace.InstrumentOptions{})
		if err != nil {
			return 0, err
		}
		fo, err := run(full, maxSteps)
		if err != nil {
			return 0, err
		}
		go_, err := run(gated, maxSteps)
		if err != nil {
			return 0, err
		}
		if len(fo) != len(go_) {
			findings++
			fmt.Printf("selfcheck %v: output length differs (%d vs %d)\n", prec, len(fo), len(go_))
			continue
		}
		diff := 0
		for i := range fo {
			if fo[i].Bits != go_[i].Bits {
				diff++
			}
		}
		if diff > 0 {
			findings += diff
			fmt.Printf("selfcheck %v: %d output words differ between checked and gated builds\n", prec, diff)
		}
	}
	return findings, nil
}

func run(m *prog.Module, maxSteps uint64) ([]vm.OutVal, error) {
	mach, err := vm.New(m)
	if err != nil {
		return nil, err
	}
	if maxSteps != 0 {
		mach.MaxSteps = maxSteps
	}
	if err := mach.Run(); err != nil {
		return nil, err
	}
	return mach.Out, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "fpanalyze:", err)
	os.Exit(1)
}
