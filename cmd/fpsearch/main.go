// Command fpsearch runs the automatic breadth-first mixed-precision
// search (paper §2.2) on a benchmark and reports the Figure 10 metrics,
// optionally writing the final composed configuration.
//
// By default the search is sensitivity-guided: a shadow-value pass
// (internal/shadow, one instrumented run) profiles per-instruction
// single-precision error first, the work queue is ordered safest-first,
// and predictably hopeless aggregates skip their evaluation runs.
// -nosens disables all of it, reproducing the counts-prioritized
// baseline trajectory exactly.
//
//	fpsearch -bench mg -class W -o mg-final.cfg
//	fpsearch -bench cg -class A -granularity block -workers 8
//	fpsearch -bench ep -class W -nosens
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"

	"fpmix/internal/config"
	"fpmix/internal/kernels"
	"fpmix/internal/search"
	"fpmix/internal/shadow"
)

func main() {
	bench := flag.String("bench", "", "benchmark to search (one of kernels.Names())")
	class := flag.String("class", "W", "input class (W, A, C)")
	out := flag.String("o", "", "write the final composed configuration here")
	workers := flag.Int("workers", runtime.NumCPU(), "parallel evaluations")
	gran := flag.String("granularity", "insn", "finest search level: func, block or insn")
	noSplit := flag.Bool("nosplit", false, "disable the binary-splitting optimization")
	noPrio := flag.Bool("noprio", false, "disable profile-based prioritization")
	noEngine := flag.Bool("noengine", false, "evaluate through the from-scratch fallback instead of the cached engine")
	noPrune := flag.Bool("noprune", false, "disable static candidate pruning (dataflow unsafe sinks, zero-weight pieces)")
	noSens := flag.Bool("nosens", false, "disable sensitivity guidance (shadow-value ordering and prediction gating)")
	shadowIn := flag.String("shadow", "", "load a saved sensitivity profile instead of collecting one")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile of the search here")
	compose := flag.Bool("compose", false, "run the second search phase when the union fails (§3.1)")
	verbose := flag.Bool("v", false, "list every passing piece")
	flag.Parse()

	if *bench == "" {
		flag.Usage()
		os.Exit(2)
	}
	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fatal(err)
		}
		defer pprof.StopCPUProfile()
	}
	b, err := kernels.Get(*bench, kernels.Class(*class))
	if err != nil {
		fatal(err)
	}
	g := config.KindInsn
	switch *gran {
	case "func":
		g = config.KindFunc
	case "block":
		g = config.KindBlock
	case "insn":
	default:
		fatal(fmt.Errorf("unknown granularity %q", *gran))
	}
	target := search.Target{
		Module:   b.Module,
		Verify:   b.Verify,
		MaxSteps: b.MaxSteps,
		Base:     b.Base,
	}
	mode := search.EngineOn
	if *noEngine {
		mode = search.EngineOff
	}
	var sh *shadow.Profile
	if !*noSens {
		if *shadowIn != "" {
			f, err := os.Open(*shadowIn)
			if err != nil {
				fatal(err)
			}
			sh, err = shadow.Read(f)
			f.Close()
			if err != nil {
				fatal(err)
			}
		} else if sh, err = shadow.Collect(*bench+"."+*class, b.Module, b.MaxSteps); err != nil {
			fatal(err)
		}
	}
	res, err := search.Run(target, search.Options{
		Workers:       *workers,
		Granularity:   g,
		BinarySplit:   !*noSplit,
		Prioritize:    !*noPrio,
		Engine:        mode,
		NoPrune:       *noPrune,
		Shadow:        sh,
		SensThreshold: b.SensTol,
	})
	if err != nil {
		fatal(err)
	}
	verdict := "fail"
	if res.FinalPass {
		verdict = "pass"
	}
	fmt.Printf("benchmark:            %s.%s\n", *bench, *class)
	fmt.Printf("candidates:           %d\n", res.Candidates)
	fmt.Printf("configurations tested: %d (+%d memoized)\n", res.Tested, res.MemoHits)
	fmt.Printf("pruned candidates:    %d (%d unsafe sinks)\n", res.PrunedCandidates, len(res.Unsafe))
	if sh != nil {
		fmt.Printf("sensitivity:          guided (%d aggregate failures predicted without a run)\n", res.Predicted)
	} else {
		fmt.Printf("sensitivity:          off\n")
	}
	fmt.Printf("static replaced:      %.1f%%\n", res.Stats.StaticPct)
	fmt.Printf("dynamic replaced:     %.1f%%\n", res.Stats.DynamicPct)
	fmt.Printf("final verification:   %s\n", verdict)
	finalCfg := res.Final
	if *compose && !res.FinalPass {
		cr, err := search.Compose(target, res)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("second phase:         dropped %d pieces in %d tests, pass: %v\n",
			len(cr.Dropped), cr.Tested, cr.Pass)
		if cr.Pass {
			fmt.Printf("composed replaced:    %.1f%% static, %.1f%% dynamic\n",
				cr.Stats.StaticPct, cr.Stats.DynamicPct)
			finalCfg = cr.Config
		}
	}
	if *verbose {
		fmt.Println("passing pieces (coarsest granularity):")
		for _, p := range res.Passing {
			fmt.Printf("  %-40s %d instructions, weight %d\n", p.Label, len(p.Addrs), p.Weight)
		}
	}
	if *out != "" {
		if sh != nil {
			// Sensitivity notes ride along in the exchange format.
			shadow.AnnotateConfig(sh, finalCfg)
		}
		f, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		if err := finalCfg.Write(f); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "fpsearch: wrote %s\n", *out)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "fpsearch:", err)
	os.Exit(1)
}
