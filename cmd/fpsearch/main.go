// Command fpsearch runs the automatic breadth-first mixed-precision
// search (paper §2.2) on a benchmark and reports the Figure 10 metrics,
// optionally writing the final composed configuration.
//
// By default the search is sensitivity-guided: a shadow-value pass
// (internal/shadow, one instrumented run) profiles per-instruction
// single-precision error first, the work queue is ordered safest-first,
// and predictably hopeless aggregates skip their evaluation runs.
// -nosens disables all of it, reproducing the counts-prioritized
// baseline trajectory exactly.
//
// The search is crash-tolerant and resumable: -timeout bounds each
// evaluation, -retries heals transient faults, -checkpoint journals every
// settled verdict so a killed search can pick up with -resume, -chaos
// arms seeded fault injection (a self-test: the final configuration must
// not change), and a SIGINT stops the search gracefully with the
// best-so-far configuration.
//
//	fpsearch -bench mg -class W -o mg-final.cfg
//	fpsearch -bench cg -class A -granularity block -workers 8
//	fpsearch -bench ep -class W -nosens
//	fpsearch -bench lu -class A -checkpoint lu.ckpt      # later: -resume lu.ckpt
//	fpsearch -bench ep -class W -chaos 42 -retries 3
//	fpsearch -bench lu -class W -nofork              # no fork-point snapshots
//
// Evaluations default to fork-point mode: one donor run of the base
// configuration is snapshotted at every candidate site's first execution
// and each configuration runs only its divergent suffix, re-linked
// incrementally. -nofork restores entry-to-exit evaluation (the finals
// are byte-identical either way).
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"runtime"
	"runtime/pprof"

	"fpmix/internal/config"
	"fpmix/internal/faultinject"
	"fpmix/internal/kernels"
	"fpmix/internal/search"
	"fpmix/internal/shadow"
)

func main() {
	bench := flag.String("bench", "", "benchmark to search (one of kernels.Names())")
	class := flag.String("class", "W", "input class (W, A, C)")
	out := flag.String("o", "", "write the final composed configuration here")
	workers := flag.Int("workers", runtime.NumCPU(), "parallel evaluations")
	gran := flag.String("granularity", "insn", "finest search level: func, block or insn")
	noSplit := flag.Bool("nosplit", false, "disable the binary-splitting optimization")
	noPrio := flag.Bool("noprio", false, "disable profile-based prioritization")
	noEngine := flag.Bool("noengine", false, "evaluate through the from-scratch fallback instead of the cached engine")
	noFork := flag.Bool("nofork", false, "disable fork-point evaluation: evaluate every configuration from the program entry instead of from shared-prefix snapshots")
	noCompile := flag.Bool("nocompile", false, "run evaluations on the per-step interpreter instead of the compiled engine (differential testing)")
	noPrune := flag.Bool("noprune", false, "disable static candidate pruning (dataflow unsafe sinks, zero-weight pieces)")
	noProve := flag.Bool("noprove", false, "disable the static error-bound prover (every verdict comes from evaluation)")
	noSens := flag.Bool("nosens", false, "disable sensitivity guidance (shadow-value ordering and prediction gating)")
	shadowIn := flag.String("shadow", "", "load a saved sensitivity profile instead of collecting one")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile of the search here")
	compose := flag.Bool("compose", false, "run the second search phase when the union fails (§3.1)")
	verbose := flag.Bool("v", false, "list every passing piece")
	timeout := flag.Duration("timeout", 0, "per-evaluation wall-clock bound (0 = none)")
	retries := flag.Int("retries", 0, "retry budget for transient evaluation faults (default 3 under -chaos)")
	checkpoint := flag.String("checkpoint", "", "journal settled verdicts to this file (created fresh)")
	resume := flag.String("resume", "", "resume from this checkpoint journal, then keep appending to it")
	chaosSeed := flag.Int64("chaos", 0, "arm seeded fault injection on evaluations (0 = off)")
	jsonOut := flag.Bool("json", false, "print the machine-readable result summary (the fpmixd status-endpoint shape) instead of the report")
	flag.Parse()

	if *bench == "" {
		flag.Usage()
		os.Exit(2)
	}
	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fatal(err)
		}
		defer pprof.StopCPUProfile()
	}
	b, err := kernels.Get(*bench, kernels.Class(*class))
	if err != nil {
		fatal(err)
	}
	g := config.KindInsn
	switch *gran {
	case "func":
		g = config.KindFunc
	case "block":
		g = config.KindBlock
	case "insn":
	default:
		fatal(fmt.Errorf("unknown granularity %q", *gran))
	}
	target := search.Target{
		Module:   b.Module,
		Verify:   b.Verify,
		MaxSteps: b.MaxSteps,
		Base:     b.Base,
	}
	// Fork-point evaluation is the default: the cached engine plus a
	// snapshotted donor run and incremental re-linking. -nofork keeps the
	// cached engine but evaluates every run from the entry; -noengine
	// drops to the from-scratch seed pipeline. Finals are byte-identical
	// across all three (pinned by the fork and engine identity tests).
	mode := search.EngineFork
	if *noFork {
		mode = search.EngineOn
	}
	if *noEngine {
		mode = search.EngineOff
	}
	var sh *shadow.Profile
	if !*noSens {
		if *shadowIn != "" {
			f, err := os.Open(*shadowIn)
			if err != nil {
				fatal(err)
			}
			sh, err = shadow.Read(f)
			f.Close()
			if err != nil {
				fatal(err)
			}
		} else if sh, err = shadow.Collect(*bench+"."+*class, b.Module, b.MaxSteps); err != nil {
			fatal(err)
		}
	}

	// Checkpoint journal: -checkpoint starts one fresh, -resume replays a
	// previous run's and keeps appending to it. The fingerprint ties the
	// journal to this exact search: the image digest catches a changed
	// program, the option set a changed search shape — a mismatch on
	// resume reports which one diverged.
	var journal *search.Journal
	imageFP, err := search.ModuleFingerprint(b.Module)
	if err != nil {
		fatal(err)
	}
	fingerprint := search.Fingerprint{
		Image:   imageFP,
		Options: fmt.Sprintf("%s.%s gran=%s", *bench, *class, *gran),
	}
	switch {
	case *checkpoint != "" && *resume != "":
		fatal(fmt.Errorf("-checkpoint and -resume are mutually exclusive (resume keeps appending)"))
	case *checkpoint != "":
		if journal, err = search.NewJournal(*checkpoint, fingerprint); err != nil {
			fatal(err)
		}
	case *resume != "":
		if journal, err = search.ResumeJournal(*resume, fingerprint); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "fpsearch: resuming %d settled verdicts from %s\n",
			journal.Prior(), *resume)
	}
	if journal != nil {
		defer journal.Close()
	}

	var chaos *faultinject.Injector
	if *chaosSeed != 0 {
		chaos = faultinject.New(*chaosSeed, faultinject.DefaultRates, 0)
	}

	// SIGINT cancels the search gracefully: in-flight evaluations stop,
	// the best-so-far configuration is still reported (and written).
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	res, err := search.Run(target, search.Options{
		Workers:       *workers,
		Granularity:   g,
		BinarySplit:   !*noSplit,
		Prioritize:    !*noPrio,
		Engine:        mode,
		NoCompile:     *noCompile,
		NoPrune:       *noPrune,
		NoProve:       *noProve,
		Shadow:        sh,
		SensThreshold: b.SensTol,
		Context:       ctx,
		Timeout:       *timeout,
		Retries:       *retries,
		Chaos:         chaos,
		Checkpoint:    journal,
	})
	if err != nil {
		fatal(err)
	}
	verdict := "fail"
	if res.FinalPass {
		verdict = "pass"
	}
	if res.Interrupted {
		verdict = "not run (interrupted)"
	}
	if !*jsonOut {
		fmt.Printf("benchmark:            %s.%s\n", *bench, *class)
		if res.Interrupted {
			fmt.Printf("interrupted:          yes — reporting the best-so-far configuration\n")
		}
		fmt.Printf("candidates:           %d\n", res.Candidates)
		fmt.Printf("configurations tested: %d (+%d memoized)\n", res.Tested, res.MemoHits)
		if mode == search.EngineFork {
			fmt.Printf("forked evaluations:   %d of %d (%d shared-prefix instructions saved)\n",
				res.Forked, res.Tested, res.PrefixInstrsSaved)
		}
		if res.Resumed > 0 {
			fmt.Printf("resumed:              %d verdicts replayed from the checkpoint\n", res.Resumed)
		}
		fmt.Printf("pruned candidates:    %d (%d unsafe sinks)\n", res.PrunedCandidates, len(res.Unsafe))
		if res.Proved > 0 {
			fmt.Printf("proved safe:          %d piece verdicts settled by the error-bound prover without a run\n", res.Proved)
		}
		if sh != nil {
			fmt.Printf("sensitivity:          guided (%d aggregate failures predicted without a run)\n", res.Predicted)
		} else {
			fmt.Printf("sensitivity:          off\n")
		}
		fmt.Printf("static replaced:      %.1f%%\n", res.Stats.StaticPct)
		fmt.Printf("dynamic replaced:     %.1f%%\n", res.Stats.DynamicPct)
		fmt.Printf("final verification:   %s\n", verdict)
		if res.Crashed > 0 || res.TimedOut > 0 {
			fmt.Printf("failures absorbed:    %d crashed, %d timed out (see result records for faults)\n",
				res.Crashed, res.TimedOut)
		}
		if chaos != nil {
			s := chaos.Stats()
			fmt.Printf("chaos: seed %d decided %d faults (%d panics, %d hangs, %d flaky, %d traps), %d absorbed, healed by %d retries\n",
				chaos.Seed(), s.Total(), s.Panics, s.Hangs, s.Flakes, s.Traps, res.Injected, res.Retried)
		} else if res.Retried > 0 {
			fmt.Printf("retries:              %d\n", res.Retried)
		}
		for _, label := range res.Nondeterministic {
			fmt.Printf("nondeterministic verifier: disagreeing verdicts on %s (pass kept)\n", label)
		}
	}
	finalCfg := res.Final
	if *compose && !res.FinalPass && !res.Interrupted {
		cr, err := search.Compose(target, res)
		if err != nil {
			fatal(err)
		}
		if !*jsonOut {
			fmt.Printf("second phase:         dropped %d pieces in %d tests, pass: %v\n",
				len(cr.Dropped), cr.Tested, cr.Pass)
			if cr.Pass {
				fmt.Printf("composed replaced:    %.1f%% static, %.1f%% dynamic\n",
					cr.Stats.StaticPct, cr.Stats.DynamicPct)
			}
		}
		if cr.Pass {
			finalCfg = cr.Config
		}
	}
	if *verbose && !*jsonOut {
		fmt.Println("passing pieces (coarsest granularity):")
		for _, p := range res.Passing {
			fmt.Printf("  %-40s %d instructions, weight %d\n", p.Label, len(p.Addrs), p.Weight)
		}
	}
	// -json prints the machine-readable summary — the same encoding the
	// fpmixd status endpoint serves, so tooling parses one shape for CLI
	// batches and service jobs alike.
	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(search.Summarize(*bench+"."+*class, res)); err != nil {
			fatal(err)
		}
	}
	if *out != "" {
		if sh != nil {
			// Sensitivity notes ride along in the exchange format.
			shadow.AnnotateConfig(sh, finalCfg)
		}
		f, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		if err := finalCfg.Write(f); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "fpsearch: wrote %s\n", *out)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "fpsearch:", err)
	os.Exit(1)
}
