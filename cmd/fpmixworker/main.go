// Command fpmixworker is an out-of-process evaluation worker for the
// fpmixd search service. It connects to a daemon over HTTP, claims
// evaluation units, runs them in its own address space with the exact
// engine stack the daemon's in-process workers use, and streams the
// verdicts back — so a worker crash, partition or kill -9 can never
// take the daemon down, and the composed final configuration stays
// byte-identical to a serial fpsearch run no matter how the fleet
// fails.
//
//	fpmixworker -server http://127.0.0.1:8606 -name rack3
//
// The worker evaluates -parallel units concurrently over each job's
// shared engine stack and pipelines delivery: claims prefetch the next
// -batch units while the current ones evaluate, and verdicts ship back
// in batches, so RPC round-trips overlap with evaluation instead of
// serializing with it. It re-registers automatically when the daemon
// restarts (its identity comes back 410 Gone), drains when the daemon
// quarantines it, and on SIGINT/SIGTERM reports its in-flight units as
// interrupted so the daemon requeues them immediately.
//
// Chaos flags (testing):
//
//	-chaosnet SEED   arm deterministic network-fault injection on
//	                 every RPC (dropped responses, duplicated
//	                 deliveries, delayed sends, connection resets)
//	-sabotage N      report the first N claimed units as worker-side
//	                 failures, driving the daemon's quarantine path
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"syscall"
	"time"

	"fpmix/internal/faultinject"
	"fpmix/internal/remote"
)

func main() {
	server := flag.String("server", defaultServer(), "fpmixd base URL")
	name := flag.String("name", hostnameDefault(), "self-reported worker name (fpmixctl workers)")
	poll := flag.Duration("poll", 2*time.Second, "claim long-poll window")
	parallel := flag.Int("parallel", 0, "concurrent evaluations (0 = number of CPUs)")
	batch := flag.Int("batch", 0, "leases held at once and verdicts per report RPC (0 = max(4, 2*parallel))")
	chaosnet := flag.Int64("chaosnet", 0, "arm seeded network-fault injection (0 = off)")
	sabotage := flag.Int("sabotage", 0, "report the first N units as failures (chaos)")
	flag.Parse()

	var net *faultinject.NetInjector
	if *chaosnet != 0 {
		net = faultinject.NewNet(*chaosnet, faultinject.NetRates{}, 0)
	}
	logger := log.New(os.Stderr, "fpmixworker: ", log.LstdFlags)

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	err := remote.Run(ctx, remote.WorkerOptions{
		Server:   *server,
		Name:     *name,
		Poll:     *poll,
		Parallel: *parallel,
		Batch:    *batch,
		Net:      net,
		Sabotage: *sabotage,
		Logf:     logger.Printf,
	})
	if err != nil {
		logger.Fatal(err)
	}
	logger.Println("drained, exiting")
}

func defaultServer() string {
	if s := os.Getenv("FPMIXD_SERVER"); s != "" {
		return s
	}
	return "http://127.0.0.1:8606"
}

func hostnameDefault() string {
	h, err := os.Hostname()
	if err != nil {
		return "worker"
	}
	return fmt.Sprintf("%s.%d", h, os.Getpid())
}
