// Command fpshadow runs the shadow-value numerical analysis (one
// instrumented run carrying a single-precision shadow beside every
// double) and emits a ranked sensitivity report: the instructions least
// likely to survive single precision first, plus error-flow attribution
// by function. The profile can be persisted in the fpmix-profile text
// container and reloaded for later reports.
//
//	fpshadow -bench ep -class W                  # ranked report
//	fpshadow -bench ep -class W -o ep.shadow     # also persist the profile
//	fpshadow -in ep.shadow -top 10               # report from a saved profile
//	fpshadow -bench mg -class W -conf mg.cfg     # annotate a configuration
package main

import (
	"flag"
	"fmt"
	"os"

	"fpmix/internal/config"
	"fpmix/internal/kernels"
	"fpmix/internal/shadow"
)

func main() {
	bench := flag.String("bench", "", "benchmark to analyze (one of kernels.Names())")
	class := flag.String("class", "W", "input class (W, A, C)")
	in := flag.String("in", "", "read a saved sensitivity profile instead of running")
	out := flag.String("o", "", "persist the sensitivity profile here")
	top := flag.Int("top", 20, "ranked instructions to list (0 for all)")
	confPath := flag.String("conf", "", "annotate this configuration file with shadow notes and rewrite it")
	flag.Parse()

	var p *shadow.Profile
	var cfg *config.Config
	switch {
	case *in != "":
		f, err := os.Open(*in)
		if err != nil {
			fatal(err)
		}
		p, err = shadow.Read(f)
		f.Close()
		if err != nil {
			fatal(err)
		}
	case *bench != "":
		b, err := kernels.Get(*bench, kernels.Class(*class))
		if err != nil {
			fatal(err)
		}
		p, err = shadow.Collect(*bench+"."+*class, b.Module, b.MaxSteps)
		if err != nil {
			fatal(err)
		}
		if cfg, err = config.FromModule(b.Module); err != nil {
			fatal(err)
		}
	default:
		flag.Usage()
		os.Exit(2)
	}

	fmt.Printf("shadow profile %s: %d instructions sampled\n", p.Name, len(p.Records))
	ranked := p.Ranked()
	n := len(ranked)
	if *top > 0 && *top < n {
		n = *top
	}
	fmt.Printf("%4s %-10s %-10s %10s %10s %10s %6s %6s\n",
		"rank", "addr", "op", "execs", "maxrelerr", "localerr", "cancel", "div")
	for i := 0; i < n; i++ {
		r := ranked[i]
		fmt.Printf("%4d %#08x %-10s %10d %10.3g %10.3g %6d %6d\n",
			i+1, r.Addr, r.Op, r.Execs, r.MaxRelErr, r.LocalMaxErr, r.MaxCancelBits, r.Divergences)
	}

	// Error-flow attribution up the piece tree (needs the module's
	// structure, so only with -bench).
	if cfg != nil {
		fmt.Println("\nerror flow by piece:")
		for _, s := range shadow.Attribute(p, cfg) {
			if s.Depth > 1 {
				continue // module and function rows only
			}
			label := "module " + s.Name
			if s.Kind == config.KindFunc {
				label = "func " + s.Name
			}
			indent := ""
			if s.Depth == 1 {
				indent = "  "
			}
			fmt.Printf("%s%-28s insns=%-4d execs=%-10d maxerr=%-10.3g errmass=%-12.4g cancel=%-3d div=%d\n",
				indent, label, s.Insns, s.Execs, s.MaxErr, s.ErrMass, s.MaxCancelBits, s.Divergences)
		}
	}

	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		if err := shadow.Write(f, p); err != nil {
			f.Close()
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "fpshadow: wrote %s\n", *out)
	}

	if *confPath != "" {
		f, err := os.Open(*confPath)
		if err != nil {
			fatal(err)
		}
		c, err := config.Read(f)
		f.Close()
		if err != nil {
			fatal(err)
		}
		annotated := shadow.AnnotateConfig(p, c)
		f, err = os.Create(*confPath)
		if err != nil {
			fatal(err)
		}
		if err := c.Write(f); err != nil {
			f.Close()
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "fpshadow: annotated %d instructions in %s\n", annotated, *confPath)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "fpshadow:", err)
	os.Exit(1)
}
