// Command fpview renders a precision configuration as an annotated tree —
// the terminal counterpart of the paper's GUI configuration editor
// (Figure 4). Each node shows its flag (d/s/i, or inherited), with
// -bench the per-instruction execution counts from a profiling run are
// shown so hot unreplaced regions stand out, and with -shadow the
// sensitivity profile's error/cancellation marks are shown so fragile
// regions stand out.
//
//	fpview -config mg-final.cfg
//	fpview -config mg-final.cfg -bench mg -class W
//	fpview -config ep-final.cfg -shadow ep.shadow
package main

import (
	"flag"
	"fmt"
	"os"

	"fpmix/internal/config"
	"fpmix/internal/kernels"
	"fpmix/internal/shadow"
	"fpmix/internal/vm"
)

func main() {
	cfgPath := flag.String("config", "", "configuration file to display")
	bench := flag.String("bench", "", "benchmark for profile annotation (optional)")
	class := flag.String("class", "W", "input class")
	shadowPath := flag.String("shadow", "", "sensitivity profile for error annotation (optional)")
	flag.Parse()

	if *cfgPath == "" {
		flag.Usage()
		os.Exit(2)
	}
	f, err := os.Open(*cfgPath)
	if err != nil {
		fatal(err)
	}
	c, err := config.Read(f)
	f.Close()
	if err != nil {
		fatal(err)
	}

	profile := map[uint64]uint64{}
	debug := map[uint64]string{}
	if *bench != "" {
		b, err := kernels.Get(*bench, kernels.Class(*class))
		if err != nil {
			fatal(err)
		}
		if b.Module.Debug != nil {
			debug = b.Module.Debug
		}
		m, err := vm.New(b.Module)
		if err != nil {
			fatal(err)
		}
		m.MaxSteps = b.MaxSteps
		if err := m.Run(); err != nil {
			fatal(err)
		}
		profile = m.Profile()
	}

	var sh *shadow.Profile
	if *shadowPath != "" {
		f, err := os.Open(*shadowPath)
		if err != nil {
			fatal(err)
		}
		sh, err = shadow.Read(f)
		f.Close()
		if err != nil {
			fatal(err)
		}
	}

	eff := c.Effective()
	var render func(n *config.Node, depth int, inherited config.Precision)
	render = func(n *config.Node, depth int, inherited config.Precision) {
		flagCh := n.Flag.String()
		if flagCh == "" {
			flagCh = "."
		}
		indent := ""
		for i := 0; i < depth; i++ {
			indent += "  "
		}
		var desc string
		switch n.Kind {
		case config.KindModule:
			desc = fmt.Sprintf("module %s", n.Name)
		case config.KindFunc:
			desc = fmt.Sprintf("func %s()", n.Name)
		case config.KindBlock:
			desc = fmt.Sprintf("block %#x", n.Addr)
		case config.KindInsn:
			desc = fmt.Sprintf("%#x %s", n.Addr, n.Name)
		}
		line := fmt.Sprintf("%s %s%s", flagCh, indent, desc)
		if n.Kind == config.KindInsn {
			p := eff[n.Addr]
			extra := fmt.Sprintf("  [%s", p)
			if cnt := profile[n.Addr]; cnt > 0 {
				extra += fmt.Sprintf(", %d execs", cnt)
			}
			if sh != nil {
				if r, ok := sh.At(n.Addr); ok {
					extra += fmt.Sprintf(", err=%.3g", r.MaxRelErr)
					if r.MaxCancelBits > 0 {
						extra += fmt.Sprintf(", cancel=%d", r.MaxCancelBits)
					}
					if r.Divergences > 0 {
						extra += fmt.Sprintf(", div=%d", r.Divergences)
					}
				}
			}
			if src, ok := debug[n.Addr]; ok {
				extra += ", " + src
			}
			extra += "]"
			line += extra
		}
		if n.Note != "" {
			line += "  ; " + n.Note
		}
		fmt.Println(line)
		next := inherited
		if next == config.Unset && n.Flag != config.Unset {
			next = n.Flag
		}
		for _, ch := range n.Children {
			render(ch, depth+1, next)
		}
	}
	render(c.Root, 0, config.Unset)

	// Summary.
	counts := map[config.Precision]int{}
	for _, p := range eff {
		counts[p]++
	}
	fmt.Printf("\n%d candidates: %d single, %d double, %d ignored\n",
		len(eff), counts[config.Single], counts[config.Double], counts[config.Ignore])
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "fpview:", err)
	os.Exit(1)
}
