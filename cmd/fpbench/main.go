// Command fpbench regenerates the paper's evaluation tables and figures
// on the fpmix substrate.
//
// Usage:
//
//	fpbench -exp all                 # every experiment
//	fpbench -exp fig10 -classes W,A  # the search table at chosen classes
//	fpbench -exp fig11 -class W      # the SuperLU threshold sweep
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"

	"fpmix/internal/experiments"
	"fpmix/internal/kernels"
	"fpmix/internal/report"
)

func main() {
	exp := flag.String("exp", "all", "experiment: fig8, fig9, fig10, fig11, amg, bitexact, all")
	class := flag.String("class", "W", "input class for single-class experiments (W, A, C)")
	classes := flag.String("classes", "W,A", "comma-separated classes for fig10")
	workers := flag.Int("workers", runtime.NumCPU(), "parallel search evaluations")
	flag.Parse()

	cl := kernels.Class(*class)
	var cls []kernels.Class
	for _, c := range strings.Split(*classes, ",") {
		cls = append(cls, kernels.Class(strings.TrimSpace(c)))
	}

	run := func(name string, f func() error) {
		if *exp != "all" && *exp != name {
			return
		}
		if err := f(); err != nil {
			fmt.Fprintf(os.Stderr, "fpbench: %s: %v\n", name, err)
			os.Exit(1)
		}
		report.Rule(os.Stdout)
	}

	run("fig8", func() error {
		rows, err := experiments.Fig8(kernels.ClassA)
		if err != nil {
			return err
		}
		report.Fig8(os.Stdout, rows)
		return nil
	})
	run("fig9", func() error {
		rows, err := experiments.Fig9([]kernels.Class{kernels.ClassA, kernels.ClassC})
		if err != nil {
			return err
		}
		report.Fig9(os.Stdout, rows)
		return nil
	})
	run("fig10", func() error {
		rows, err := experiments.Fig10(experiments.Fig10Benches, cls, *workers)
		if err != nil {
			return err
		}
		report.Fig10(os.Stdout, rows)
		return nil
	})
	run("fig11", func() error {
		rows, err := experiments.Fig11(cl, *workers)
		if err != nil {
			return err
		}
		report.Fig11(os.Stdout, rows)
		return nil
	})
	run("amg", func() error {
		res, err := experiments.AMG(cl, *workers)
		if err != nil {
			return err
		}
		report.AMG(os.Stdout, res)
		return nil
	})
	run("bitexact", func() error {
		rows, err := experiments.BitExact(cl)
		if err != nil {
			return err
		}
		report.BitExact(os.Stdout, rows)
		return nil
	})
}
