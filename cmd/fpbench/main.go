// Command fpbench regenerates the paper's evaluation tables and figures
// on the fpmix substrate.
//
// Usage:
//
//	fpbench -exp all                 # every experiment
//	fpbench -exp fig10 -classes W,A  # the search table at chosen classes
//	fpbench -exp fig11 -class W      # the SuperLU threshold sweep
//	fpbench -exp sens -workers 1     # the sensitivity-guided search ablation
//	fpbench -exp engine -class W     # compiled vs interpreted engine ablation
//	fpbench -exp fork -class W       # fork-point evaluation vs -nofork ablation
//	fpbench -exp remote -class W     # remote fleet vs one-unit-per-RPC throughput
//
// Besides the human-readable tables, -json writes the raw experiment
// rows as JSON and -benchstat writes Go testing.B-style lines
// (benchstat-compatible: "Benchmark<exp>/<case> 1 <value> <unit> ...")
// so the perf trajectory can be diffed across revisions with standard
// tooling. Either flag accepts "-" for stdout.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"strings"
	"time"

	"fpmix/internal/experiments"
	"fpmix/internal/kernels"
	"fpmix/internal/report"
)

// results aggregates the raw rows of every experiment that ran, for the
// -json output.
type results struct {
	Fig8     []experiments.Fig8Row     `json:"fig8,omitempty"`
	Fig9     []experiments.Fig9Row     `json:"fig9,omitempty"`
	Fig10    []experiments.Fig10Row    `json:"fig10,omitempty"`
	Fig11    []experiments.Fig11Row    `json:"fig11,omitempty"`
	AMG      *experiments.AMGResult    `json:"amg,omitempty"`
	BitExact []experiments.BitExactRow `json:"bitexact,omitempty"`
	Sens     []experiments.SensRow     `json:"sens,omitempty"`
	Engine   []experiments.EngineRow   `json:"engine,omitempty"`
	Fork     []experiments.ForkRow     `json:"fork,omitempty"`
	Bounds   []experiments.BoundsRow   `json:"bounds,omitempty"`
	Remote   []experiments.RemoteRow   `json:"remote,omitempty"`
	// RemoteSweep is the wall-weighted aggregate of the Remote rows: the
	// sweep-wide throughput ratio of the batched fleet protocol over the
	// one-unit-per-RPC baseline.
	RemoteSweep *experiments.RemoteSweep `json:"remote_sweep,omitempty"`
}

func main() {
	exp := flag.String("exp", "all", "experiment: fig8, fig9, fig10, fig11, amg, bitexact, sens, engine, fork, bounds, remote, all")
	benches := flag.String("benches", "", "comma-separated kernel subset for -exp remote (default: all searchable kernels)")
	class := flag.String("class", "W", "input class for single-class experiments (W, A, C)")
	classes := flag.String("classes", "W,A", "comma-separated classes for fig10")
	workers := flag.Int("workers", runtime.NumCPU(), "parallel search evaluations")
	jsonOut := flag.String("json", "", "write raw experiment rows as JSON to this file (- for stdout)")
	statOut := flag.String("benchstat", "", "write benchstat-compatible lines to this file (- for stdout)")
	flag.Parse()

	cl := kernels.Class(*class)
	var cls []kernels.Class
	for _, c := range strings.Split(*classes, ",") {
		cls = append(cls, kernels.Class(strings.TrimSpace(c)))
	}

	var res results
	var stats []string
	var known []string
	matched := false

	run := func(name string, f func() error) {
		known = append(known, name)
		if *exp != "all" && *exp != name {
			return
		}
		matched = true
		start := time.Now()
		if err := f(); err != nil {
			fmt.Fprintf(os.Stderr, "fpbench: %s: %v\n", name, err)
			os.Exit(1)
		}
		stats = append(stats, fmt.Sprintf("Benchmark%s 1 %d ns/op", camel(name), time.Since(start).Nanoseconds()))
		report.Rule(os.Stdout)
	}

	run("fig8", func() error {
		rows, err := experiments.Fig8(kernels.ClassA)
		if err != nil {
			return err
		}
		res.Fig8 = rows
		for _, r := range rows {
			for i, ov := range r.Overhead {
				stats = append(stats, fmt.Sprintf("BenchmarkFig8/%s/%dranks 1 %.3f overheadX",
					r.Bench, experiments.Fig8Ranks[i], ov))
			}
		}
		report.Fig8(os.Stdout, rows)
		return nil
	})
	run("fig9", func() error {
		rows, err := experiments.Fig9([]kernels.Class{kernels.ClassA, kernels.ClassC})
		if err != nil {
			return err
		}
		res.Fig9 = rows
		for _, r := range rows {
			stats = append(stats, fmt.Sprintf("BenchmarkFig9/%s.%s 1 %.3f overheadX", r.Bench, r.Class, r.Overhead))
		}
		report.Fig9(os.Stdout, rows)
		return nil
	})
	run("fig10", func() error {
		rows, err := experiments.Fig10(experiments.Fig10Benches, cls, *workers)
		if err != nil {
			return err
		}
		res.Fig10 = rows
		for _, r := range rows {
			stats = append(stats, fmt.Sprintf("BenchmarkFig10/%s.%s 1 %d testedCfgs %.1f staticPct %.1f dynamicPct",
				r.Bench, r.Class, r.Tested, r.StaticPct, r.DynamicPct))
		}
		report.Fig10(os.Stdout, rows)
		return nil
	})
	run("fig11", func() error {
		rows, err := experiments.Fig11(cl, *workers)
		if err != nil {
			return err
		}
		res.Fig11 = rows
		for _, r := range rows {
			stats = append(stats, fmt.Sprintf("BenchmarkFig11/%.0e 1 %.1f staticPct %.1f dynamicPct",
				r.Threshold, r.StaticPct, r.DynamicPct))
		}
		report.Fig11(os.Stdout, rows)
		return nil
	})
	run("amg", func() error {
		r, err := experiments.AMG(cl, *workers)
		if err != nil {
			return err
		}
		res.AMG = r
		stats = append(stats,
			fmt.Sprintf("BenchmarkAMG 1 %.3f speedupX %.3f overheadX", r.ManualSpeedup, r.AnalysisOverhead))
		report.AMG(os.Stdout, r)
		return nil
	})
	run("bitexact", func() error {
		rows, err := experiments.BitExact(cl)
		if err != nil {
			return err
		}
		res.BitExact = rows
		report.BitExact(os.Stdout, rows)
		return nil
	})
	run("sens", func() error {
		rows, err := experiments.Sens(experiments.Fig10Benches, cl, *workers)
		if err != nil {
			return err
		}
		res.Sens = rows
		for _, r := range rows {
			stats = append(stats, fmt.Sprintf("BenchmarkSens/%s.%s 1 %d testedCfgs %d baseCfgs %d predicted",
				r.Bench, r.Class, r.TestedSens, r.TestedBase, r.Predicted))
		}
		report.Sens(os.Stdout, rows)
		return nil
	})
	run("engine", func() error {
		rows, err := experiments.Engine(experiments.Fig10Benches, cl, *workers)
		if err != nil {
			return err
		}
		res.Engine = rows
		for _, r := range rows {
			// One line per backend so `benchstat compiled.txt interp.txt`
			// and cross-revision diffs both work.
			stats = append(stats,
				fmt.Sprintf("BenchmarkEngine/%s.%s/compiled 1 %d ns/op %d testedCfgs",
					r.Bench, r.Class, r.CompiledNS, r.Tested),
				fmt.Sprintf("BenchmarkEngine/%s.%s/nocompile 1 %d ns/op %d testedCfgs",
					r.Bench, r.Class, r.InterpNS, r.Tested))
		}
		report.Engine(os.Stdout, rows)
		return nil
	})
	run("fork", func() error {
		rows, err := experiments.Fork(experiments.Fig10Benches, cl, *workers)
		if err != nil {
			return err
		}
		res.Fork = rows
		for _, r := range rows {
			// One line per mode so benchstat can diff fork against nofork
			// and either against prior revisions.
			stats = append(stats,
				fmt.Sprintf("BenchmarkFork/%s.%s/nofork 1 %d ns/op %d testedCfgs",
					r.Bench, r.Class, r.NoForkNS, r.Tested),
				fmt.Sprintf("BenchmarkFork/%s.%s/fork 1 %d ns/op %d forkedCfgs %d prefixSaved",
					r.Bench, r.Class, r.ForkNS, r.Forked, r.PrefixSaved))
		}
		report.Fork(os.Stdout, rows)
		return nil
	})
	run("remote", func() error {
		names := experiments.Fig10Benches
		if *benches != "" {
			names = nil
			for _, b := range strings.Split(*benches, ",") {
				names = append(names, strings.TrimSpace(b))
			}
		}
		rows, err := experiments.Remote(names, cl, *workers)
		if err != nil {
			return err
		}
		res.Remote = rows
		if len(rows) > 1 {
			sw := experiments.SweepOf(rows)
			res.RemoteSweep = &sw
			stats = append(stats,
				fmt.Sprintf("BenchmarkRemote/sweep.%s/one 1 %d ns/op", cl, sw.OneNS),
				fmt.Sprintf("BenchmarkRemote/sweep.%s/fleet 1 %d ns/op %d units",
					cl, sw.FleetNS, sw.Units))
		}
		for _, r := range rows {
			// One line per configuration so benchstat can diff the batched
			// fleet against the one-unit protocol and either against prior
			// revisions.
			stats = append(stats,
				fmt.Sprintf("BenchmarkRemote/%s.%s/serial 1 %d ns/op",
					r.Bench, r.Class, r.SerialNS),
				fmt.Sprintf("BenchmarkRemote/%s.%s/one 1 %d ns/op",
					r.Bench, r.Class, r.OneNS),
				fmt.Sprintf("BenchmarkRemote/%s.%s/fleet 1 %d ns/op %d units",
					r.Bench, r.Class, r.FleetNS, r.Units))
		}
		report.Remote(os.Stdout, rows)
		return nil
	})
	run("bounds", func() error {
		rows, err := experiments.Bounds(experiments.Fig10Benches, cl, *workers)
		if err != nil {
			return err
		}
		res.Bounds = rows
		for _, r := range rows {
			// One line per mode so benchstat can diff proving against
			// -noprove and either against prior revisions.
			stats = append(stats,
				fmt.Sprintf("BenchmarkBounds/%s.%s/noprove 1 %d ns/op %d testedCfgs",
					r.Bench, r.Class, r.NoProveNS, r.TestedNoProve),
				fmt.Sprintf("BenchmarkBounds/%s.%s/prove 1 %d ns/op %d testedCfgs %d provedCfgs",
					r.Bench, r.Class, r.ProveNS, r.TestedProve, r.Proved))
		}
		report.Bounds(os.Stdout, rows)
		return nil
	})

	if *exp != "all" && !matched {
		fmt.Fprintf(os.Stderr, "fpbench: unknown experiment %q\navailable experiments: %s, all\n",
			*exp, strings.Join(known, ", "))
		os.Exit(2)
	}

	if *jsonOut != "" {
		emit(*jsonOut, func(w io.Writer) error {
			enc := json.NewEncoder(w)
			enc.SetIndent("", "  ")
			return enc.Encode(&res)
		})
	}
	if *statOut != "" {
		emit(*statOut, func(w io.Writer) error {
			for _, s := range stats {
				if _, err := fmt.Fprintln(w, s); err != nil {
					return err
				}
			}
			return nil
		})
	}
}

// emit writes to a file or, for "-", stdout.
func emit(path string, f func(io.Writer) error) {
	w := io.Writer(os.Stdout)
	if path != "-" {
		file, err := os.Create(path)
		if err != nil {
			fmt.Fprintln(os.Stderr, "fpbench:", err)
			os.Exit(1)
		}
		defer file.Close()
		w = file
	}
	if err := f(w); err != nil {
		fmt.Fprintln(os.Stderr, "fpbench:", err)
		os.Exit(1)
	}
}

// camel maps an experiment name to its Benchmark suffix (fig10 → Fig10).
func camel(s string) string {
	if s == "" {
		return s
	}
	return strings.ToUpper(s[:1]) + s[1:]
}
