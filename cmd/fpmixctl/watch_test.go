package main

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"
)

// TestWatchOnceResumesFromLastSeq pins the client half of watch's
// reconnect: a connection dropped mid-stream leaves `last` at the
// highest seq printed, and the next connection asks the server for
// ?from=last+1 — so across a daemon restart no event is repeated or
// lost.
func TestWatchOnceResumesFromLastSeq(t *testing.T) {
	var froms []string
	conn := 0
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		conn++
		froms = append(froms, r.URL.Query().Get("from"))
		w.Header().Set("Content-Type", "application/x-ndjson")
		if conn == 1 {
			// Three events, then the connection dies without an end marker.
			for seq := 1; seq <= 3; seq++ {
				fmt.Fprintf(w, `{"seq":%d,"type":"note","note":"n%d"}`+"\n", seq, seq)
			}
			return
		}
		// The resumed stream: the remaining events, then a clean end.
		for seq := 4; seq <= 5; seq++ {
			fmt.Fprintf(w, `{"seq":%d,"type":"note","note":"n%d"}`+"\n", seq, seq)
		}
		fmt.Fprintln(w, `{"type":"end"}`)
	}))
	defer ts.Close()

	c := &client{base: ts.URL}
	last := 0
	ended, progressed, err := c.watchOnce("j0001", &last)
	if ended || !progressed || err == nil {
		t.Fatalf("dropped stream: ended=%v progressed=%v err=%v, want retryable error with progress", ended, progressed, err)
	}
	if last != 3 {
		t.Fatalf("last = %d after first connection, want 3", last)
	}
	ended, progressed, err = c.watchOnce("j0001", &last)
	if !ended || !progressed || err != nil {
		t.Fatalf("resumed stream: ended=%v progressed=%v err=%v, want clean end", ended, progressed, err)
	}
	if last != 5 {
		t.Fatalf("last = %d after resume, want 5", last)
	}
	if len(froms) != 2 || froms[0] != "1" || froms[1] != "4" {
		t.Fatalf("server saw from=%v, want [1 4]", froms)
	}
}

// TestWatchOnceBadStatus: a non-200 answer is a terminal error for the
// connection, carrying the server's message.
func TestWatchOnceBadStatus(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "no job j9999", http.StatusNotFound)
	}))
	defer ts.Close()
	c := &client{base: ts.URL}
	last := 0
	ended, _, err := c.watchOnce("j9999", &last)
	if ended || err == nil {
		t.Fatalf("404 stream: ended=%v err=%v, want error", ended, err)
	}
}
