// Command fpmixctl is the client for the fpmixd search service.
//
//	fpmixctl [-server URL] submit -bench ep -class W
//	fpmixctl submit -image prog.fpm -verify rel -tol 1e-8
//	fpmixctl list
//	fpmixctl status j0001
//	fpmixctl wait j0001                  # poll until the job ends
//	fpmixctl watch j0001                 # follow the progress stream
//	fpmixctl cancel j0001
//	fpmixctl result j0001 -o final.cfg   # download the final configuration
//	fpmixctl workers                     # fleet table with throughput columns
//	fpmixctl workers -json               # raw registry snapshot
//	fpmixctl kill-worker w2              # chaos: report a worker dead
//
// The server URL defaults to http://127.0.0.1:8606 and can also come
// from $FPMIXD_SERVER.
package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"text/tabwriter"
	"time"

	"fpmix/internal/fleet"
)

func main() {
	server := flag.String("server", defaultServer(), "fpmixd base URL")
	flag.Parse()
	if flag.NArg() < 1 {
		usage()
	}
	c := &client{base: *server}
	cmd, args := flag.Arg(0), flag.Args()[1:]
	var err error
	switch cmd {
	case "submit":
		err = c.submit(args)
	case "list":
		err = c.getJSON("/api/v1/jobs")
	case "status":
		err = c.withID(args, func(id string) error { return c.getJSON("/api/v1/jobs/" + id) })
	case "wait":
		err = c.wait(args)
	case "watch":
		err = c.withID(args, c.watch)
	case "cancel":
		err = c.withID(args, func(id string) error { return c.postJSON("/api/v1/jobs/"+id+"/cancel", nil) })
	case "result":
		err = c.result(args)
	case "workers":
		err = c.workers(args)
	case "kill-worker":
		err = c.withID(args, func(id string) error { return c.postJSON("/api/v1/workers/"+id+"/kill", nil) })
	case "health":
		err = c.getJSON("/api/v1/healthz")
	default:
		usage()
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "fpmixctl:", err)
		os.Exit(1)
	}
}

func defaultServer() string {
	if s := os.Getenv("FPMIXD_SERVER"); s != "" {
		return s
	}
	return "http://127.0.0.1:8606"
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: fpmixctl [-server URL] <submit|list|status|wait|watch|cancel|result|workers|kill-worker|health> ...")
	os.Exit(2)
}

type client struct{ base string }

func (c *client) withID(args []string, f func(string) error) error {
	if len(args) != 1 {
		return fmt.Errorf("expected exactly one job/worker ID, got %v", args)
	}
	return f(args[0])
}

// submit builds a job spec from flags and posts it.
func (c *client) submit(args []string) error {
	fs := flag.NewFlagSet("submit", flag.ExitOnError)
	bench := fs.String("bench", "", "kernel to search (mutually exclusive with -image)")
	class := fs.String("class", "W", "input class")
	image := fs.String("image", "", "program image file to search (needs -verify)")
	verify := fs.String("verify", "", "verifier for -image: rel or bitexact")
	tol := fs.Float64("tol", 0, "relative tolerance for -verify rel")
	maxSteps := fs.Uint64("maxsteps", 0, "step bound for -image runs (0 = none)")
	gran := fs.String("granularity", "insn", "finest search level: func, block or insn")
	noSens := fs.Bool("nosens", false, "disable sensitivity guidance")
	noPrune := fs.Bool("noprune", false, "disable static candidate pruning")
	noProve := fs.Bool("noprove", false, "disable the error-bound prover")
	noFork := fs.Bool("nofork", false, "disable fork-point evaluation")
	chaos := fs.Int64("chaos", 0, "arm seeded fault injection (0 = off)")
	fs.Parse(args)
	spec := map[string]any{
		"granularity": *gran,
	}
	if *bench != "" {
		spec["kernel"] = *bench
		spec["class"] = *class
	}
	if *image != "" {
		data, err := os.ReadFile(*image)
		if err != nil {
			return err
		}
		spec["image"] = data
		if *verify != "" {
			v := map[string]any{"mode": *verify}
			if *tol != 0 {
				v["tol"] = *tol
			}
			spec["verifier"] = v
		}
		if *maxSteps != 0 {
			spec["max_steps"] = *maxSteps
		}
	}
	if *noSens {
		spec["nosens"] = true
	}
	if *noPrune {
		spec["noprune"] = true
	}
	if *noProve {
		spec["noprove"] = true
	}
	if *noFork {
		spec["nofork"] = true
	}
	if *chaos != 0 {
		spec["chaos"] = *chaos
	}
	body, err := json.Marshal(spec)
	if err != nil {
		return err
	}
	return c.postJSON("/api/v1/jobs", body)
}

// wait polls the job until it reaches a terminal state, then prints the
// final status; a non-done terminal state is an error exit.
func (c *client) wait(args []string) error {
	fs := flag.NewFlagSet("wait", flag.ExitOnError)
	interval := fs.Duration("interval", time.Second, "poll interval")
	timeout := fs.Duration("timeout", 30*time.Minute, "give up after this long")
	fs.Parse(args)
	if fs.NArg() != 1 {
		return fmt.Errorf("expected exactly one job ID")
	}
	id := fs.Arg(0)
	deadline := time.Now().Add(*timeout)
	for {
		resp, err := http.Get(c.base + "/api/v1/jobs/" + id)
		if err != nil {
			return err
		}
		data, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			return err
		}
		if resp.StatusCode != http.StatusOK {
			return fmt.Errorf("%s: %s", resp.Status, bytes.TrimSpace(data))
		}
		var st struct {
			Job struct {
				State string `json:"state"`
				Error string `json:"error"`
			} `json:"job"`
		}
		if err := json.Unmarshal(data, &st); err != nil {
			return err
		}
		switch st.Job.State {
		case "done":
			os.Stdout.Write(data)
			return nil
		case "failed", "cancelled":
			os.Stdout.Write(data)
			return fmt.Errorf("job %s %s: %s", id, st.Job.State, st.Job.Error)
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("job %s still %s after %s", id, st.Job.State, *timeout)
		}
		time.Sleep(*interval)
	}
}

// watch follows the job's ndjson progress stream, printing one line
// per event until the stream ends. A dropped connection (daemon
// restart, network blip) reconnects with exponential backoff and
// resumes from the last-seen sequence number via ?from=, so no event
// is missed or repeated across reconnects.
func (c *client) watch(id string) error {
	last := 0 // highest event seq already printed
	backoff := 500 * time.Millisecond
	const maxBackoff = 8 * time.Second
	for attempt := 0; ; attempt++ {
		ended, progressed, err := c.watchOnce(id, &last)
		if ended {
			return nil
		}
		if err != nil && attempt == 0 && last == 0 {
			// The very first connect failed outright (bad job ID, no
			// server): report it instead of retrying forever.
			return err
		}
		if progressed {
			backoff = 500 * time.Millisecond
		}
		fmt.Fprintf(os.Stderr, "fpmixctl: stream dropped (%v), reconnecting from seq %d in %s\n",
			err, last+1, backoff)
		time.Sleep(backoff)
		if backoff *= 2; backoff > maxBackoff {
			backoff = maxBackoff
		}
	}
}

// watchOnce runs one stream connection. It reports whether the stream
// ended cleanly (the "end" marker arrived) and whether any event was
// received on this connection (progress resets the reconnect backoff).
func (c *client) watchOnce(id string, last *int) (ended, progressed bool, err error) {
	resp, err := http.Get(fmt.Sprintf("%s/api/v1/jobs/%s/events?from=%d", c.base, id, *last+1))
	if err != nil {
		return false, false, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		data, _ := io.ReadAll(resp.Body)
		return false, false, fmt.Errorf("%s: %s", resp.Status, bytes.TrimSpace(data))
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		var e struct {
			Seq  int    `json:"seq"`
			Type string `json:"type"`
			Note string `json:"note"`
			Eval *struct {
				Label string `json:"label"`
				Pass  bool   `json:"pass"`
				Prov  string `json:"prov"`
				Insns int    `json:"insns"`
			} `json:"eval"`
		}
		if err := json.Unmarshal(sc.Bytes(), &e); err != nil {
			fmt.Println(sc.Text())
			continue
		}
		if e.Seq > *last {
			*last = e.Seq
		}
		progressed = true
		switch e.Type {
		case "eval":
			verdict := "fail"
			if e.Eval.Pass {
				verdict = "pass"
			}
			fmt.Printf("%-10s %-4s %s (%d insns)\n", e.Eval.Prov, verdict, e.Eval.Label, e.Eval.Insns)
		case "note":
			fmt.Printf("note: %s\n", e.Note)
		case "end":
			return true, progressed, nil
		}
	}
	if err := sc.Err(); err != nil {
		return false, progressed, err
	}
	return false, progressed, fmt.Errorf("stream closed without end marker")
}

// workers renders the fleet registry as a table with per-worker
// throughput columns (units/s, mean unit wall, in-flight) fed by the
// daemon's batch accounting; -json dumps the raw snapshot instead.
func (c *client) workers(args []string) error {
	fs := flag.NewFlagSet("workers", flag.ExitOnError)
	raw := fs.Bool("json", false, "print the raw JSON registry snapshot")
	fs.Parse(args)
	if *raw {
		return c.getJSON("/api/v1/workers")
	}
	resp, err := http.Get(c.base + "/api/v1/workers")
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return err
	}
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("%s: %s", resp.Status, bytes.TrimSpace(data))
	}
	var workers []fleet.WorkerInfo
	if err := json.Unmarshal(data, &workers); err != nil {
		return err
	}
	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "ID\tNAME\tSTATE\tPAR\tIN-FLIGHT\tDONE\tDISC\tFAILS\tUNITS/S\tMEAN-UNIT\tLAST-BEAT")
	for _, w := range workers {
		name := w.Name
		if name == "" {
			name = "-"
		}
		ups, mean := "-", "-"
		if w.Done > 0 {
			ups = fmt.Sprintf("%.1f", w.UnitsPerSec)
			mean = fmt.Sprintf("%.2fms", w.MeanUnitMS)
		}
		// IN-FLIGHT is evaluating/leased: how many units run right now
		// over how many the daemon has in the worker's hands.
		fmt.Fprintf(tw, "%s\t%s\t%s\t%d\t%d/%d\t%d\t%d\t%d\t%s\t%s\t%s\n",
			w.ID, name, w.State, w.Parallel, w.Evaluating, w.InFlight,
			w.Done, w.Discarded, w.Fails, ups, mean,
			w.LastBeat.Format("15:04:05.000"))
	}
	return tw.Flush()
}

// result downloads the final configuration.
func (c *client) result(args []string) error {
	fs := flag.NewFlagSet("result", flag.ExitOnError)
	out := fs.String("o", "", "write the configuration here instead of stdout")
	fs.Parse(args)
	if fs.NArg() != 1 {
		return fmt.Errorf("expected exactly one job ID")
	}
	resp, err := http.Get(c.base + "/api/v1/jobs/" + fs.Arg(0) + "/result")
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		data, _ := io.ReadAll(resp.Body)
		return fmt.Errorf("%s: %s", resp.Status, bytes.TrimSpace(data))
	}
	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	_, err = io.Copy(w, resp.Body)
	return err
}

func (c *client) getJSON(path string) error {
	resp, err := http.Get(c.base + path)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	return printResponse(resp)
}

func (c *client) postJSON(path string, body []byte) error {
	resp, err := http.Post(c.base+path, "application/json", bytes.NewReader(body))
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	return printResponse(resp)
}

func printResponse(resp *http.Response) error {
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return err
	}
	if resp.StatusCode >= 300 {
		return fmt.Errorf("%s: %s", resp.Status, bytes.TrimSpace(data))
	}
	os.Stdout.Write(data)
	return nil
}
