// Command fpconf materializes benchmark binaries and their default
// precision configurations.
//
// Build a benchmark image and write its baseline configuration:
//
//	fpconf -bench cg -class W -o cg.fpx -config cg.cfg
//
// Generate the configuration of an existing image:
//
//	fpconf -in prog.fpx -config prog.cfg
//
// The configuration file uses the paper's exchange format (Figure 3) and
// can be edited by hand (flag column: d/s/i) and fed to fpinst.
package main

import (
	"flag"
	"fmt"
	"os"

	"fpmix/internal/config"
	"fpmix/internal/kernels"
	"fpmix/internal/prog"
)

func main() {
	bench := flag.String("bench", "", "benchmark to build (one of kernels.Names())")
	class := flag.String("class", "W", "input class (W, A, C)")
	in := flag.String("in", "", "existing image to read instead of building a benchmark")
	out := flag.String("o", "", "write the program image here")
	cfgOut := flag.String("config", "", "write the default configuration here (- for stdout)")
	flag.Parse()

	m, err := loadModule(*bench, *class, *in)
	if err != nil {
		fatal(err)
	}
	if *out != "" {
		img, err := prog.Save(m)
		if err != nil {
			fatal(err)
		}
		if err := os.WriteFile(*out, img, 0o644); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "fpconf: wrote %s (%d bytes, %d candidates)\n",
			*out, len(img), len(m.Candidates()))
	}
	if *cfgOut != "" {
		c, err := config.FromModule(m)
		if err != nil {
			fatal(err)
		}
		w := os.Stdout
		if *cfgOut != "-" {
			f, err := os.Create(*cfgOut)
			if err != nil {
				fatal(err)
			}
			defer f.Close()
			w = f
		}
		if err := c.Write(w); err != nil {
			fatal(err)
		}
	}
	if *out == "" && *cfgOut == "" {
		flag.Usage()
		os.Exit(2)
	}
}

func loadModule(bench, class, in string) (*prog.Module, error) {
	switch {
	case in != "":
		img, err := os.ReadFile(in)
		if err != nil {
			return nil, err
		}
		return prog.Load(img)
	case bench != "":
		b, err := kernels.Get(bench, kernels.Class(class))
		if err != nil {
			return nil, err
		}
		return b.Module, nil
	default:
		return nil, fmt.Errorf("need -bench or -in")
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "fpconf:", err)
	os.Exit(1)
}
